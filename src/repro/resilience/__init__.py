"""Fault campaigns, write journaling, and deterministic chaos scenarios.

The resilience layer sits on top of the unified testbed surface
(:class:`~repro.testbed.base.TestbedProtocol`): campaigns schedule
macro-faults (link kill/flap, brownout, lender crash) against a host's
fault domain, :class:`ResilientBuffer` journals writes so failover can
replay them byte-for-byte, and the scenarios in
:mod:`repro.resilience.scenarios` tie both to the
:class:`~repro.control.health.HealthMonitor` into end-to-end,
seed-deterministic recovery runs (also exposed as
``python -m repro chaos``).
"""

from .campaigns import (
    CAMPAIGN_PARAMS,
    CAMPAIGNS,
    Brownout,
    CampaignParam,
    CampaignParamError,
    FaultCampaign,
    LenderCrash,
    LinkFlap,
    LinkKill,
    UnknownCampaignError,
    campaign_catalogue,
    ensure_injector,
    make_campaign,
    make_rest_fault_hook,
    validate_campaign_params,
)
from .journal import ResilientBuffer, WriteJournal
from .scenarios import SCENARIOS, run_scenario

__all__ = [
    "FaultCampaign",
    "LinkKill",
    "LinkFlap",
    "Brownout",
    "LenderCrash",
    "UnknownCampaignError",
    "CampaignParamError",
    "CampaignParam",
    "CAMPAIGNS",
    "CAMPAIGN_PARAMS",
    "campaign_catalogue",
    "validate_campaign_params",
    "make_campaign",
    "ensure_injector",
    "make_rest_fault_hook",
    "WriteJournal",
    "ResilientBuffer",
    "SCENARIOS",
    "run_scenario",
]
