"""Rack-scale tests: N nodes behind a control-plane-programmed circuit
switch (§VII projection)."""

import pytest

from repro.control import NoPathError, SwitchDriver, extract_switch_hops
from repro.mem import CACHELINE_BYTES, MIB
from repro.net import CircuitSwitch, SwitchError
from repro.sim import Simulator
from repro.testbed import RackTestbed


class TestSwitchDriver:
    def make(self):
        sim = Simulator()
        switch = CircuitSwitch(sim, ports=8, reconfiguration_s=0.0)
        return SwitchDriver("sw0", switch), switch

    def test_connect_is_bidirectional(self):
        driver, switch = self.make()
        driver.connect(0, 5)
        assert switch.circuit_for(0) == 5
        assert switch.circuit_for(5) == 0

    def test_refcounted_sharing(self):
        driver, switch = self.make()
        driver.connect(0, 5)
        driver.connect(5, 0)  # same circuit, canonicalized
        driver.disconnect(0, 5)
        assert switch.circuit_for(0) == 5  # still referenced
        driver.disconnect(5, 0)
        assert switch.circuit_for(0) is None

    def test_port_conflict_rejected(self):
        driver, _switch = self.make()
        driver.connect(0, 5)
        with pytest.raises(SwitchError):
            driver.connect(0, 3)
        with pytest.raises(SwitchError):
            driver.connect(2, 5)

    def test_disconnect_unknown_circuit_rejected(self):
        driver, _switch = self.make()
        with pytest.raises(Exception):
            driver.disconnect(0, 1)

    def test_extract_switch_hops(self):
        path = ("node0/cep", "node0/x0", "sw0/p0", "sw0/p3",
                "node1/x1", "node1/mep")
        assert extract_switch_hops(path, "sw0") == [(0, 3)]
        assert extract_switch_hops(path, "other") == []


class TestRackTestbed:
    @pytest.fixture(scope="class")
    def rack(self):
        return RackTestbed(nodes=4)

    def test_attach_programs_circuits(self, rack):
        attachment = rack.attach("node0", 2 * MIB, memory_host="node2")
        assert rack.driver.circuits()  # at least one circuit live
        rack.detach(attachment)
        assert rack.driver.circuits() == []

    def test_functional_roundtrip_through_switch(self, rack):
        attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
        window = rack.remote_window_range(attachment)
        payload = bytes(range(128))
        rack.node("node0").run_store(window.start, payload)
        assert rack.node("node0").run_load(window.start) == payload
        assert rack.switch.frames_forwarded > 0
        rack.detach(attachment)

    def test_rtt_includes_switch_crossings(self, rack):
        attachment = rack.attach("node0", 1 * MIB, memory_host="node3")
        window = rack.remote_window_range(attachment)
        for _ in range(8):
            rack.node("node0").run_load(window.start)
        rtt = rack.node("node0").device.compute.rtt.mean
        # Back-to-back prototype ≈ 1.03 µs; two switch crossings at
        # 100 ns each push the rack RTT above that.
        assert 1.15e-6 <= rtt <= 1.6e-6
        rack.detach(attachment)

    def test_numa_distance_reflects_switch_hop(self, rack):
        attachment = rack.attach("node0", 1 * MIB, memory_host="node1")
        kernel = rack.node("node0").kernel
        distance = kernel.topology.distance(
            0, attachment.plan.numa_node_id
        )
        # remote latency 950ns + 2x100ns hop → distance ≈ 135.
        assert distance > 120
        rack.detach(attachment)

    def test_concurrent_attachments_between_disjoint_pairs(self, rack):
        a = rack.attach("node0", 1 * MIB, memory_host="node1")
        b = rack.attach("node2", 1 * MIB, memory_host="node3")
        wa = rack.remote_window_range(a)
        wb = rack.remote_window_range(b)
        rack.node("node0").run_store(wa.start, b"\xaa" * 128)
        rack.node("node2").run_store(wb.start, b"\xbb" * 128)
        assert rack.node("node0").run_load(wa.start) == b"\xaa" * 128
        assert rack.node("node2").run_load(wb.start) == b"\xbb" * 128
        rack.detach(a)
        rack.detach(b)

    def test_auto_donor_selection(self, rack):
        attachment = rack.attach("node1", 1 * MIB)  # planner picks donor
        assert attachment.memory_host != "node1"
        rack.detach(attachment)

    def test_detach_releases_ports_for_new_pairs(self, rack):
        # Saturate node0's two channels with two circuits...
        a = rack.attach("node0", 1 * MIB, memory_host="node1")
        b = rack.attach("node0", 1 * MIB, memory_host="node2")
        # ...now both channels carry circuits to different peers; a third
        # distinct destination cannot get a conflict-free circuit.
        with pytest.raises(Exception):
            rack.attach("node0", 1 * MIB, memory_host="node3")
        rack.detach(a)
        c = rack.attach("node0", 1 * MIB, memory_host="node3")
        rack.detach(b)
        rack.detach(c)

    def test_minimum_node_count(self):
        with pytest.raises(ValueError):
            RackTestbed(nodes=1)
