"""Point-to-point link model: bonded serdes lanes with in-order delivery.

The prototype's network channels each drive "4x bonded GTY transceivers
at 25Gbit/sec (100Gbit/sec)" using the Xilinx Aurora 64B/66B datalink
layer (§V). This module models one such channel as a unidirectional
serializing pipe: frames queue at the transmitter, occupy the wire for
``size / rate`` seconds, cross two serdes PHYs and the cable, and pop
out at the receiver in order. Fault injection happens on the wire.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .. import accel
from ..obs import trace as _trace
from ..sim.engine import Simulator
from ..sim.resources import Store
from ..sim.stats import RunningStats
from .faults import FaultInjector

__all__ = [
    "LinkConfig",
    "SerialLink",
    "DuplexChannel",
    "AURORA_OVERHEAD",
    "SERDES_CROSSING_S",
]

#: Aurora 64B/66B line coding overhead (64 payload bits per 66 wire bits).
AURORA_OVERHEAD = 66.0 / 64.0

#: One serdes (PHY) crossing. The 950 ns RTT budget counts six serdes
#: crossings end-to-end; two of them belong to each network traversal.
SERDES_CROSSING_S = 55e-9


class LinkConfig:
    """Static parameters of one unidirectional channel.

    The derived rates are precomputed once here: ``serialization_time``
    sits on the per-frame hot path of every link pump, and walking the
    ``payload_bits_per_s`` -> ``raw_bits_per_s`` property chain on each
    frame costs two Python calls and three float ops per frame for
    values that never change after construction. The properties remain
    as thin reads of the precomputed fields; the instance is treated as
    immutable (construct a new config to change a parameter).
    """

    def __init__(
        self,
        lanes: int = 4,
        lane_gbps: float = 25.0,
        cable_propagation_s: float = 15e-9,
        serdes_crossing_s: float = SERDES_CROSSING_S,
        coding_overhead: float = AURORA_OVERHEAD,
    ):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1: {lanes}")
        if lane_gbps <= 0:
            raise ValueError(f"lane_gbps must be > 0: {lane_gbps}")
        self.lanes = lanes
        self.lane_gbps = lane_gbps
        self.cable_propagation_s = cable_propagation_s
        self.serdes_crossing_s = serdes_crossing_s
        self.coding_overhead = coding_overhead
        # Same arithmetic as the former property chain, so precomputed
        # values (and every downstream timestamp) stay bit-identical.
        self._raw_bits_per_s = lanes * lane_gbps * 1e9
        self._payload_bits_per_s = self._raw_bits_per_s / coding_overhead
        self._flight_latency_s = serdes_crossing_s + cable_propagation_s

    @property
    def raw_bits_per_s(self) -> float:
        return self._raw_bits_per_s

    @property
    def payload_bits_per_s(self) -> float:
        """Line rate available to payload after 64B/66B coding."""
        return self._payload_bits_per_s

    @property
    def flight_latency_s(self) -> float:
        """Per-frame fixed latency: one serdes crossing + the cable.

        The paper's RTT budget counts "two [serdes crossings] for the
        network" — one per direction (§V)."""
        return self._flight_latency_s

    def serialization_time(self, payload_bytes: int) -> float:
        return payload_bytes * 8 / self._payload_bits_per_s


class SerialLink:
    """One direction of a network channel.

    ``send(payload, size_bytes)`` enqueues; an internal pump process
    serializes strictly in order (this is what makes LLC frame ids
    monotonic on the wire). Dropped frames vanish; corrupted frames are
    delivered with ``corrupted=True`` attached via a wrapper tuple —
    receivers see ``(payload, corrupted)``.
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[LinkConfig] = None,
        faults: Optional[FaultInjector] = None,
        name: str = "link",
        tx_queue_depth: Optional[int] = None,
        rx_store: Optional[Store] = None,
    ):
        self.sim = sim
        self.config = config or LinkConfig()
        self.faults = faults
        self.name = name
        self._tx_queue: Store = Store(sim, capacity=tx_queue_depth,
                                      name=f"{name}.txq")
        #: Delivery target; pass ``rx_store`` to terminate the link on a
        #: foreign queue (e.g. a circuit switch's port ingress).
        self.rx: Store = rx_store if rx_store is not None else Store(
            sim, name=f"{name}.rx")
        self.bytes_sent = 0
        self.bytes_delivered = 0
        self.frames_sent = 0
        self.frames_delivered = 0
        self.queue_delay = RunningStats(f"{name}.queue_delay")
        self._busy_until = 0.0
        sim.process(self._pump(), name=f"{name}.pump")

    # -- transmit side -----------------------------------------------------------
    def send(self, payload: Any, size_bytes: int,
             pre_corrupted: bool = False):
        """Waitable enqueue of one frame (fires when queued).

        ``pre_corrupted`` propagates upstream damage through multi-hop
        paths (a switch re-transmitting a frame it received corrupted).
        """
        if size_bytes <= 0:
            raise ValueError(f"frame size must be > 0: {size_bytes}")
        self.frames_sent += 1
        self.bytes_sent += size_bytes
        return self._tx_queue.put(
            (payload, size_bytes, self.sim.now, pre_corrupted)
        )

    def try_send(self, payload: Any, size_bytes: int,
                 pre_corrupted: bool = False) -> bool:
        if self._tx_queue.try_put(
            (payload, size_bytes, self.sim.now, pre_corrupted)
        ):
            self.frames_sent += 1
            self.bytes_sent += size_bytes
            return True
        return False

    # -- wire pump ------------------------------------------------------------------
    def _pump(self) -> Generator:
        # The pump drains every frame queued at its wake-up instant in
        # one pass, computing each frame's wire occupancy analytically
        # instead of sleeping through it. The run's serialization
        # boundaries come from the accel backend's batch schedule kernel
        # (numpy cumsum for long runs), which accumulates with the same
        # float additions in the same order the sleeping formulation
        # performed, and deliveries are scheduled at those absolute
        # times — so delivery timestamps (and the fault-injector's
        # per-frame decision order) are bit-identical across backends
        # and formulations; the frames just cost two events instead of
        # four.
        while True:
            entry = yield self._tx_queue.get()
            # No yields below, so nothing can enqueue mid-drain: taking
            # the whole run up front preserves arrival order exactly.
            entries = [entry]
            while True:
                entry = self._tx_queue.try_get()
                if entry is None:
                    break
                entries.append(entry)
            wire_free = self._busy_until
            if wire_free < self.sim.now:
                wire_free = self.sim.now
            bounds = accel.ops.serialization_schedule(
                wire_free,
                [item[1] for item in entries],
                self.config.payload_bits_per_s,
            )
            for index, item in enumerate(entries):
                payload, size_bytes, enqueued_at, pre_corrupted = item
                ser_start = bounds[index]
                ser_end = bounds[index + 1]
                self.queue_delay.add(ser_start - enqueued_at)
                if _trace.ENABLED:
                    _trace.span(
                        "link.serialize",
                        ser_start,
                        ser_end,
                        self.name,
                        bytes=size_bytes,
                    )
                decision = self.faults.decide() if self.faults else None
                if not (decision is not None and decision.drop):
                    corrupted = pre_corrupted or bool(
                        decision is not None and decision.corrupt
                    )
                    if corrupted and _trace.ENABLED:
                        _trace.instant(
                            "link.corrupt", ser_start, self.name,
                            bytes=size_bytes,
                        )
                    self.sim.schedule_at(
                        ser_end + self.config.flight_latency_s,
                        self._deliver,
                        payload,
                        size_bytes,
                        corrupted,
                    )
                elif _trace.ENABLED:
                    _trace.instant(
                        "link.drop", ser_start, self.name, bytes=size_bytes
                    )
            self._busy_until = bounds[-1]

    def _deliver(self, payload: Any, size_bytes: int, corrupted: bool) -> None:
        self.frames_delivered += 1
        self.bytes_delivered += size_bytes
        if not self._tx_to_rx(payload, corrupted):
            raise RuntimeError(f"{self.name}: rx overflow (unbounded store?)")

    def _tx_to_rx(self, payload: Any, corrupted: bool) -> bool:
        return self.rx.try_put((payload, corrupted))

    # -- observability ------------------------------------------------------------
    def utilization(self, window_s: float) -> float:
        """Mean payload utilization over elapsed time ``window_s``."""
        if window_s <= 0:
            return 0.0
        return (self.bytes_delivered * 8 / self.config.payload_bits_per_s) / window_s

    def register_metrics(self, registry, **labels) -> None:
        """Pull collector: traffic volume, queueing, live utilization."""

        def collect(reg):
            base = dict(link=self.name, **labels)
            reg.gauge("link.bytes_sent", **base).set(self.bytes_sent)
            reg.gauge("link.bytes_delivered", **base).set(self.bytes_delivered)
            reg.gauge("link.frames_sent", **base).set(self.frames_sent)
            reg.gauge("link.frames_delivered", **base).set(
                self.frames_delivered
            )
            if self.queue_delay.count:
                reg.gauge("link.queue_delay_mean_s", **base).set(
                    self.queue_delay.mean
                )
            reg.gauge("link.utilization", **base).set(
                self.utilization(self.sim.now)
            )
            if self.faults is not None:
                self.faults.collect_into(reg, link=self.name, **labels)

        registry.add_collector(collect)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SerialLink({self.name!r}, {self.config.lanes}x"
            f"{self.config.lane_gbps}G, sent={self.frames_sent})"
        )


class DuplexChannel:
    """A bidirectional network channel: two mirrored serial links.

    ``a_to_b``/``b_to_a`` are the two directions; endpoints hold opposite
    perspectives via :meth:`endpoint_view`.
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[LinkConfig] = None,
        faults_ab: Optional[FaultInjector] = None,
        faults_ba: Optional[FaultInjector] = None,
        name: str = "channel",
    ):
        self.sim = sim
        self.name = name
        self.config = config or LinkConfig()
        self.a_to_b = SerialLink(sim, self.config, faults_ab, name=f"{name}.ab")
        self.b_to_a = SerialLink(sim, self.config, faults_ba, name=f"{name}.ba")

    def endpoint_view(self, side: str) -> "ChannelEndpointView":
        if side == "a":
            return ChannelEndpointView(self.a_to_b, self.b_to_a)
        if side == "b":
            return ChannelEndpointView(self.b_to_a, self.a_to_b)
        raise ValueError(f"side must be 'a' or 'b', got {side!r}")


class ChannelEndpointView:
    """One endpoint's view of a duplex channel: my tx link + my rx store."""

    def __init__(self, tx_link: SerialLink, rx_link: SerialLink):
        self.tx_link = tx_link
        self.rx_link = rx_link

    def send(self, payload: Any, size_bytes: int):
        return self.tx_link.send(payload, size_bytes)

    @property
    def rx(self) -> Store:
        return self.rx_link.rx
