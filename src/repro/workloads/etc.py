"""Facebook "ETC" Memcached load generator — paper §VI-E.

Reimplements the statistical model the paper built from Atikoglu et
al.'s workload characterization [56] and Breslau's Zipf observation
[57]:

* warm-up SETs fill the cache to a configurable size (10 GiB),
* 64 client threads issue GET/SET with a 30:1 ratio,
* keys are drawn Zipf(1.0) from a 15 GiB key-value space,
* the resulting hit ratio lands at 80–82 % ("close to the 81 % value
  reported in [56]").

Key and value sizes follow the ETC distributions: short keys (~20–40 B)
and small values (a few hundred bytes, long-tailed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..sim.rng import SeededRNG, ZipfGenerator

__all__ = [
    "CacheOpType",
    "CacheOperation",
    "EtcConfig",
    "EtcGenerator",
    "ITEM_OVERHEAD_BYTES",
]

#: memcached per-item overhead: item header, CAS, slab alignment.
ITEM_OVERHEAD_BYTES = 64


class CacheOpType(enum.Enum):
    GET = "get"
    SET = "set"


@dataclass(frozen=True)
class CacheOperation:
    op_type: CacheOpType
    key: str
    value_bytes: int = 0


@dataclass(frozen=True)
class EtcConfig:
    """Paper parameters (§VI-E), scalable for tests."""

    cache_bytes: int = 10 * (1 << 30)
    keyspace_bytes: int = 15 * (1 << 30)
    get_set_ratio: float = 30.0
    zipf_exponent: float = 1.0
    client_threads: int = 64
    requests_per_thread: int = 1_000_000
    mean_item_bytes: int = 330  # key+value+overhead, ETC-like

    def __post_init__(self):
        if self.keyspace_bytes < self.cache_bytes:
            raise ValueError(
                "keyspace must be at least as large as the cache "
                "(otherwise every access hits)"
            )
        if self.get_set_ratio <= 0:
            raise ValueError(f"get_set_ratio must be > 0: {self.get_set_ratio}")

    @property
    def total_keys(self) -> int:
        return max(1, self.keyspace_bytes // self.mean_item_bytes)

    @property
    def keys_fitting_in_cache(self) -> int:
        """Resident capacity in items: the cache pays per-item overhead
        (header + slab alignment) that the keyspace accounting does not."""
        return max(
            1, self.cache_bytes // (self.mean_item_bytes + ITEM_OVERHEAD_BYTES)
        )

    @property
    def get_probability(self) -> float:
        return self.get_set_ratio / (self.get_set_ratio + 1.0)

    def scaled(self, factor: float) -> "EtcConfig":
        """Shrink the working set for functional runs; ratios preserved."""
        return EtcConfig(
            cache_bytes=max(1, int(self.cache_bytes * factor)),
            keyspace_bytes=max(1, int(self.keyspace_bytes * factor)),
            get_set_ratio=self.get_set_ratio,
            zipf_exponent=self.zipf_exponent,
            client_threads=self.client_threads,
            requests_per_thread=self.requests_per_thread,
            mean_item_bytes=self.mean_item_bytes,
        )


class EtcGenerator:
    """Deterministic ETC operation stream."""

    def __init__(self, config: Optional[EtcConfig] = None, seed: int = 11):
        self.config = config or EtcConfig()
        self._rng = SeededRNG(seed).derive("etc")
        self._zipf = ZipfGenerator(
            self.config.total_keys, self.config.zipf_exponent, self._rng
        )

    # -- item geometry ---------------------------------------------------------------
    def key_name(self, rank: int) -> str:
        return f"etc:{rank:016d}"

    def value_size(self) -> int:
        """ETC-like long-tailed value size (lognormal body)."""
        size = int(self._rng.lognormal(5.2, 0.9))  # median ≈ 180 B
        return max(16, min(size, 64 * 1024))

    # -- phases ----------------------------------------------------------------------
    def warmup_operations(self) -> Iterator[CacheOperation]:
        """SETs that fill the cache to ``cache_bytes`` (§VI-E warm-up).

        The warm-up loader does not know key popularity, so it fills the
        cache with *uniformly* chosen keys. This is what pins the
        measured hit ratio near 81 % instead of the ≈98 % a
        perfectly-hot cache would give: coverage starts at
        cache/keyspace ≈ 2/3 and run-time SETs (Zipf keys) enrich the
        resident set toward the hot head.
        """
        filled = 0
        seen = set()
        total = self.config.total_keys
        while filled < self.config.cache_bytes and len(seen) < total:
            rank = self._rng.randint(0, total - 1)
            if rank in seen:
                continue
            seen.add(rank)
            value = self.value_size()
            yield CacheOperation(CacheOpType.SET, self.key_name(rank), value)
            filled += value + 64  # item overhead

    def operations(self, count: int) -> Iterator[CacheOperation]:
        """The measured phase: GET/SET at 30:1 over Zipf(1.0) keys."""
        for _ in range(count):
            rank = self._zipf.sample()
            if self._rng.random() < self.config.get_probability:
                yield CacheOperation(CacheOpType.GET, self.key_name(rank))
            else:
                yield CacheOperation(
                    CacheOpType.SET, self.key_name(rank), self.value_size()
                )

    # -- analytic expectations ----------------------------------------------------------
    def expected_hit_ratio(
        self, model_keys: int = 100_000, model_requests: int = 400_000
    ) -> float:
        """Estimated steady GET hit ratio under this configuration.

        Runs a fast vectorized membership model at a scaled key count
        (ratios preserved): warm the cache with uniformly-chosen keys,
        then stream Zipf requests where SETs (1 in ``ratio``+1) insert
        their key, evicting a random resident on overflow. For the
        paper's parameters (10/15 GiB, Zipf 1.0, 30:1) this lands in the
        80–82 % band §VI-E reports.
        """
        import numpy as np

        n = model_keys
        coverage = self.config.keys_fitting_in_cache / self.config.total_keys
        k = max(1, min(n - 1, int(n * coverage)))
        rng = self._rng.derive("hit-model").numpy
        resident = np.zeros(n, dtype=bool)
        warm = rng.choice(n, size=k, replace=False)
        resident[warm] = True
        resident_count = k
        zipf = ZipfGenerator(n, self.config.zipf_exponent,
                             self._rng.derive("hit-model-keys"))
        keys = zipf.sample_many(model_requests)
        is_set = rng.random(model_requests) >= self.config.get_probability
        hits = 0
        gets = 0
        resident_list = list(warm)
        for key, set_op in zip(keys, is_set):
            if set_op:
                if not resident[key]:
                    # Evict a random resident item to make room.
                    victim_slot = int(rng.integers(0, resident_count))
                    victim = resident_list[victim_slot]
                    resident[victim] = False
                    resident_list[victim_slot] = key
                    resident[key] = True
            else:
                gets += 1
                if resident[key]:
                    hits += 1
        return hits / gets if gets else 0.0
