"""Conservative domain synchronization (``repro.sim.domains``).

A toy ring-token program — cheap, message-heavy, and sensitive to
delivery order — exercises the coordinator's invariants directly:
serial and sharded runs must produce identical artifacts, inboxes must
be delivered in ``(deliver_t, src, seq)`` order, and lookahead
violations must fail loudly rather than silently reorder time.

The builders live in this module; forked pool workers inherit
``sys.modules``, so ``py:test_domains:...`` targets resolve on the
worker side too.
"""

import pytest

from repro.sim import DomainCoordinator, DomainMessage, Simulator, SyncError

LATENCY = 10.0


class RingProgram:
    """Pass counted tokens around the domain ring; log every delivery.

    Each domain starts ``tokens`` tokens at staggered times. A token
    carries a hop count; every delivery is recorded as ``(time, src,
    seq, hops)`` and the token forwarded until its hop budget is gone.
    The delivery log *is* the artifact, so any nondeterminism in
    routing or ordering shows up as a differing artifact.
    """

    def __init__(self, index, count, tokens=3, hops=5, latency=LATENCY):
        self.index = index
        self.count = count
        self.latency = latency
        self.sim = Simulator()
        self.seq = 0
        self.outbox = []
        self.log = []
        for token in range(tokens):
            self.sim.schedule_at(
                0.5 + token * 3.1 + index * 0.7, self._launch, token, hops
            )

    def _launch(self, token, hops):
        self._forward({"token": f"d{self.index}t{token}", "hops": hops})

    def _forward(self, payload):
        now = self.sim.now
        self.outbox.append(DomainMessage(
            src=self.index,
            dst=(self.index + 1) % self.count,
            send_t=now,
            deliver_t=now + self.latency,
            seq=self.seq,
            kind="token",
            payload=payload,
        ))
        self.seq += 1

    def _deliver(self, message):
        self.log.append((
            self.sim.now, message.src, message.seq,
            message.payload["hops"],
        ))
        if message.payload["hops"] > 1:
            self._forward({
                "token": message.payload["token"],
                "hops": message.payload["hops"] - 1,
            })

    def advance(self, window_end, inbox):
        self.outbox = []
        for message in inbox:
            self.sim.schedule_at(message.deliver_t, self._deliver, message)
        self.sim.run(until=window_end)
        return self.outbox

    def finalize(self):
        return {"index": self.index, "log": self.log, "sent": self.seq}


def build_ring(index, count, **kwargs):
    return RingProgram(index, count, **kwargs)


class BadLatencyProgram:
    """Emits a message faster than the lookahead allows."""

    def __init__(self, index, count):
        self.index = index
        self.count = count
        self.sent = False

    def advance(self, window_end, inbox):
        if self.index == 0 and not self.sent:
            self.sent = True
            return [DomainMessage(0, 1 % self.count, 1.0, 2.0, 0, "fast")]
        return []

    def finalize(self):
        return {}


def build_bad_latency(index, count):
    return BadLatencyProgram(index, count)


def ring_builders(count, **kwargs):
    return [
        ("py:test_domains:build_ring",
         {"index": index, "count": count, **kwargs})
        for index in range(count)
    ]


def run_ring(count, jobs, **kwargs):
    coordinator = DomainCoordinator(
        ring_builders(count, **kwargs),
        lookahead=LATENCY,
        horizon=60.0,
        jobs=jobs,
    )
    return coordinator.run()


class TestCoordinatorSerial:
    def test_tokens_travel_the_ring(self):
        result = run_ring(3, jobs=1)
        artifacts = result["artifacts"]
        assert [a["index"] for a in artifacts] == [0, 1, 2]
        # 3 domains x 3 tokens x 5 hops = 45 deliveries in total.
        assert sum(len(a["log"]) for a in artifacts) == 45
        assert result["messages"] == 45
        assert result["rounds"] >= 6  # horizon 60 / lookahead 10

    def test_single_domain_no_messages(self):
        result = run_ring(1, jobs=1)
        # dst == src: a 1-ring forwards to itself.
        assert result["artifacts"][0]["sent"] > 0

    def test_delivery_sorted_by_time_src_seq(self):
        result = run_ring(4, jobs=1)
        for artifact in result["artifacts"]:
            keys = [(t, src, seq) for t, src, seq, _ in artifact["log"]]
            assert keys == sorted(keys)

    def test_drain_runs_past_horizon(self):
        # Tokens launched near the horizon still finish their hops.
        coordinator = DomainCoordinator(
            ring_builders(2, tokens=1, hops=8),
            lookahead=LATENCY,
            horizon=1.0,
            jobs=1,
        )
        result = coordinator.run()
        assert sum(len(a["log"]) for a in result["artifacts"]) == 2 * 8

    def test_validation_rejects_fast_messages(self):
        coordinator = DomainCoordinator(
            [("py:test_domains:build_bad_latency",
              {"index": index, "count": 2}) for index in range(2)],
            lookahead=LATENCY,
            horizon=30.0,
        )
        with pytest.raises(SyncError, match="latency"):
            coordinator.run()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DomainCoordinator([], lookahead=1.0, horizon=1.0)
        with pytest.raises(ValueError):
            DomainCoordinator(ring_builders(1), lookahead=0.0, horizon=1.0)
        with pytest.raises(ValueError):
            DomainCoordinator(ring_builders(1), lookahead=1.0, horizon=-1.0)


class TestCoordinatorParallel:
    """The headline invariant: sharded == serial, byte for byte."""

    @pytest.mark.parametrize("jobs", [2, 3])
    def test_parallel_matches_serial(self, jobs):
        serial = run_ring(3, jobs=1)
        parallel = run_ring(3, jobs=jobs)
        assert serial["artifacts"] == parallel["artifacts"]
        assert serial["rounds"] == parallel["rounds"]
        assert serial["messages"] == parallel["messages"]

    def test_more_jobs_than_domains_clamps(self):
        result = run_ring(2, jobs=8)
        assert result["jobs"] == 2
        assert result["artifacts"] == run_ring(2, jobs=1)["artifacts"]


class TestDomainMessage:
    def test_sort_key_and_pickle_round_trip(self):
        import pickle

        message = DomainMessage(1, 0, 3.0, 13.0, 7, "x", {"a": 1})
        assert message.sort_key() == (13.0, 1, 7)
        clone = pickle.loads(pickle.dumps(message))
        assert clone.sort_key() == message.sort_key()
        assert clone.payload == {"a": 1} and clone.kind == "x"
