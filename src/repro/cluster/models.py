"""Fixed vs. disaggregated datacentre models — paper §II / Fig. 1.

* :class:`FixedDatacentre` — "12555 servers, matching the configuration
  of the Google trace": each server bundles 1.0 CPU + 1.0 memory; a
  task must fit both resources on one server.
* :class:`DisaggregatedDatacentre` — "12555 compute and 12555 memory
  modules, with the total available memory spread evenly among the
  latter. … each module connects to the data-centre interconnect via 16
  links … a fully connected topology enables any permutation of
  point-to-point connections". A task takes CPU from one compute module
  and memory from one or more memory modules, consuming one link per
  compute↔memory pairing.

Both use an online best-fit allocator without overcommitment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .trace import TaskRequest

__all__ = [
    "Placement",
    "FixedDatacentre",
    "DisaggregatedDatacentre",
    "AllocationFailure",
]


class AllocationFailure(RuntimeError):
    """The model could not place a task (capacity or connectivity)."""


@dataclass
class Placement:
    """Where a task landed; the handle used to free it later."""

    task: TaskRequest
    compute_unit: int
    memory_shares: List[Tuple[int, float]]  # (unit index, amount)


class FixedDatacentre:
    """Conventional servers: CPU and memory welded together."""

    def __init__(self, servers: int = 12_555):
        if servers < 1:
            raise ValueError(f"servers must be >= 1: {servers}")
        self.servers = servers
        self.cpu_free = np.ones(servers)
        self.mem_free = np.ones(servers)
        self.tasks_on = np.zeros(servers, dtype=np.int64)

    # -- best-fit placement -----------------------------------------------------------
    def allocate(self, task: TaskRequest) -> Placement:
        """Best fit: the feasible server with least total slack left."""
        feasible = (self.cpu_free >= task.cpu) & (self.mem_free >= task.memory)
        if not feasible.any():
            raise AllocationFailure(
                f"task {task.task_id}: no server fits "
                f"(cpu={task.cpu:.3f}, mem={task.memory:.3f})"
            )
        slack = np.where(
            feasible,
            (self.cpu_free - task.cpu) + (self.mem_free - task.memory),
            np.inf,
        )
        best_index = int(np.argmin(slack))
        self.cpu_free[best_index] -= task.cpu
        self.mem_free[best_index] -= task.memory
        self.tasks_on[best_index] += 1
        return Placement(task, best_index, [(best_index, task.memory)])

    def release(self, placement: Placement) -> None:
        index = placement.compute_unit
        self.cpu_free[index] += placement.task.cpu
        self.mem_free[index] += placement.task.memory
        self.tasks_on[index] -= 1

    # -- metrics inputs -----------------------------------------------------------------
    def powered_on(self) -> np.ndarray:
        return self.tasks_on > 0

    def servers_off(self) -> int:
        """Completely unused servers (could be switched off)."""
        return int((self.tasks_on == 0).sum())

    def stranded_cpu(self) -> float:
        """CPU capacity locked inside powered-on servers but unused."""
        on = self.tasks_on > 0
        return float(self.cpu_free[on].sum())

    def stranded_memory(self) -> float:
        on = self.tasks_on > 0
        return float(self.mem_free[on].sum())

    @property
    def total_cpu(self) -> float:
        return float(self.servers)

    @property
    def total_memory(self) -> float:
        return float(self.servers)


class DisaggregatedDatacentre:
    """Compute and memory modules composed over a full-mesh fabric."""

    def __init__(
        self,
        compute_modules: int = 12_555,
        memory_modules: int = 12_555,
        links_per_module: int = 16,
    ):
        self.compute_modules = compute_modules
        self.memory_modules = memory_modules
        self.links_per_module = links_per_module
        self.cpu_free = np.ones(compute_modules)
        self.mem_free = np.ones(memory_modules)
        self.compute_tasks = np.zeros(compute_modules, dtype=np.int64)
        self.memory_users = np.zeros(memory_modules, dtype=np.int64)
        self.compute_links_free = np.full(compute_modules, links_per_module,
                                          dtype=np.int64)
        self.memory_links_free = np.full(memory_modules, links_per_module,
                                         dtype=np.int64)

    # -- placement ---------------------------------------------------------------------
    def allocate(self, task: TaskRequest) -> Placement:
        compute = self._best_fit_compute(task)
        shares = self._place_memory(task, compute)
        self.cpu_free[compute] -= task.cpu
        self.compute_tasks[compute] += 1
        for unit, amount in shares:
            self.mem_free[unit] -= amount
            self.memory_users[unit] += 1
            self.memory_links_free[unit] -= 1
            self.compute_links_free[compute] -= 1
        return Placement(task, compute, shares)

    def release(self, placement: Placement) -> None:
        compute = placement.compute_unit
        self.cpu_free[compute] += placement.task.cpu
        self.compute_tasks[compute] -= 1
        for unit, amount in placement.memory_shares:
            self.mem_free[unit] += amount
            self.memory_users[unit] -= 1
            self.memory_links_free[unit] += 1
            self.compute_links_free[compute] += 1

    def _best_fit_compute(self, task: TaskRequest) -> int:
        feasible = (self.cpu_free >= task.cpu) & (self.compute_links_free >= 1)
        if not feasible.any():
            raise AllocationFailure(
                f"task {task.task_id}: no compute module fits "
                f"cpu={task.cpu:.3f}"
            )
        slack = np.where(feasible, self.cpu_free - task.cpu, np.inf)
        return int(np.argmin(slack))

    def _place_memory(
        self, task: TaskRequest, compute: int
    ) -> List[Tuple[int, float]]:
        """Best-fit on one module; split across modules when needed."""
        # Single-module best fit first (uses one link).
        feasible = (self.mem_free >= task.memory) & (self.memory_links_free >= 1)
        if feasible.any():
            slack = np.where(feasible, self.mem_free - task.memory, np.inf)
            return [(int(np.argmin(slack)), task.memory)]
        # Split: largest-remaining-first until satisfied, bounded by the
        # compute module's free links.
        remaining = task.memory
        shares: List[Tuple[int, float]] = []
        usable = (self.memory_links_free >= 1) & (self.mem_free > 0)
        order = np.argsort(-self.mem_free)
        links_budget = int(self.compute_links_free[compute])
        for index in order:
            if remaining <= 1e-12 or len(shares) >= links_budget:
                break
            if not usable[index]:
                continue
            amount = float(min(self.mem_free[index], remaining))
            shares.append((int(index), amount))
            remaining -= amount
        if remaining > 1e-12:
            raise AllocationFailure(
                f"task {task.task_id}: cannot assemble "
                f"{task.memory:.3f} memory across modules"
            )
        return shares

    # -- metrics inputs -----------------------------------------------------------------
    def stranded_cpu(self) -> float:
        on = self.compute_tasks > 0
        return float(self.cpu_free[on].sum())

    def stranded_memory(self) -> float:
        on = self.memory_users > 0
        return float(self.mem_free[on].sum())

    def compute_off(self) -> int:
        return int((self.compute_tasks == 0).sum())

    def memory_off(self) -> int:
        return int((self.memory_users == 0).sum())

    @property
    def total_cpu(self) -> float:
        return float(self.compute_modules)

    @property
    def total_memory(self) -> float:
        return float(self.memory_modules)
