"""A Linux-kernel memory-management facade for one host.

Ties together the sparse section model, the page allocator and the
host's NUMA topology, and implements the two §IV-B mechanisms the
prototype relies on:

* **memory hotplug** — probe + online/offline of section-aligned ranges
  at runtime ("originally designed to plug and unplug local physical
  memory modules");
* **dynamically created CPU-less NUMA nodes** — each disaggregated
  attachment lands in a fresh node whose SLIT distance reflects the
  measured compute↔donor RTT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..mem.address import AddressError, AddressRange, DEFAULT_SECTION_BYTES
from ..mem.numa import LOCAL_DISTANCE, NumaNode, NumaTopology
from .pages import (
    DEFAULT_PAGE_BYTES,
    OutOfMemory,
    Page,
    PageAllocator,
    PagePolicy,
)
from .sections import MemorySection, SectionState, SparseMemoryModel

__all__ = ["LinuxKernel", "Mapping", "HotplugError"]


class HotplugError(RuntimeError):
    """Invalid hotplug transition (mirrors -EBUSY/-EINVAL from sysfs)."""


@dataclass
class Mapping:
    """A process memory mapping: an ordered list of page frames."""

    mapping_id: int
    pages: List[Page]
    policy: PagePolicy
    nodes: Sequence[int]
    page_bytes: int

    @property
    def size(self) -> int:
        return len(self.pages) * self.page_bytes

    def page_for_offset(self, offset: int) -> Page:
        index = offset // self.page_bytes
        if not 0 <= index < len(self.pages):
            raise AddressError(
                f"offset {offset:#x} outside mapping of {self.size:#x} bytes"
            )
        return self.pages[index]

    def address_for_offset(self, offset: int) -> int:
        page = self.page_for_offset(offset)
        return page.address + (offset % self.page_bytes)

    def node_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for page in self.pages:
            histogram[page.node_id] = histogram.get(page.node_id, 0) + 1
        return histogram


class LinuxKernel:
    """Memory management state of one host."""

    def __init__(
        self,
        hostname: str = "node",
        section_bytes: int = DEFAULT_SECTION_BYTES,
        page_bytes: int = DEFAULT_PAGE_BYTES,
    ):
        if section_bytes % page_bytes:
            raise AddressError(
                "section_bytes must be a multiple of page_bytes"
            )
        self.hostname = hostname
        self.section_bytes = section_bytes
        self.page_bytes = page_bytes
        #: Copies page content between physical addresses during NUMA
        #: migration. Installed by the platform (it knows how to reach
        #: both local DRAM and ThymesisFlow windows); None = bookkeeping
        #: only (fine for pure-accounting simulations).
        self.page_copier: Optional[Callable[[int, int, int], None]] = None
        self.topology = NumaTopology()
        self.sparse = SparseMemoryModel(section_bytes)
        self.pages = PageAllocator(page_bytes)
        self._mappings: Dict[int, Mapping] = {}
        self._next_mapping_id = 1
        self._pinned: List[AddressRange] = []
        self.hotplug_events: List[str] = []

    # -- boot-time memory ---------------------------------------------------------
    def add_boot_memory(
        self,
        node_id: int,
        physical: AddressRange,
        cpu_count: int = 0,
        base_latency_s: float = 85e-9,
        distances: Optional[Dict[int, int]] = None,
    ) -> NumaNode:
        """Register a boot-time NUMA node backed by ``physical``."""
        node = self.topology.add_node(
            NumaNode(
                node_id,
                memory_bytes=physical.size,
                cpu_count=cpu_count,
                base_latency_s=base_latency_s,
                label=f"{self.hostname}/node{node_id}",
            )
        )
        for other, distance in (distances or {}).items():
            self.topology.set_distance(node_id, other, distance)
        for section in self.sparse.probe(physical.start, physical.size):
            self.sparse.online(section.index, node_id)
        self.pages.add_range(node_id, physical)
        return node

    # -- dynamic NUMA nodes ---------------------------------------------------------
    def create_cpuless_node(
        self,
        node_id: int,
        base_latency_s: float,
        distances: Dict[int, int],
    ) -> NumaNode:
        """Create the CPU-less node hosting a disaggregated attachment.

        ``distances`` maps existing node ids to SLIT distances,
        "reflecting the respective transaction RTT delay between compute
        and memory-stealing endpoints".
        """
        node = self.topology.add_node(
            NumaNode(
                node_id,
                memory_bytes=0,
                cpu_count=0,
                base_latency_s=base_latency_s,
                label=f"{self.hostname}/remote{node_id}",
            )
        )
        for other, distance in distances.items():
            self.topology.set_distance(node_id, other, distance)
        self.hotplug_events.append(f"node{node_id}: created (cpu-less)")
        return node

    def remove_node(self, node_id: int) -> None:
        if self.sparse.online_sections(node_id):
            raise HotplugError(
                f"node {node_id} still has online sections"
            )
        self.topology.remove_node(node_id)
        self.hotplug_events.append(f"node{node_id}: removed")

    # -- hotplug ----------------------------------------------------------------------
    def hotplug_probe(self, start: int, size: int) -> List[MemorySection]:
        """Probe new backing (``/sys/devices/system/memory/probe``)."""
        sections = self.sparse.probe(start, size)
        self.hotplug_events.append(
            f"probe [{start:#x}, +{size:#x}): {len(sections)} sections"
        )
        return sections

    def hotplug_online(
        self, section_indices: Sequence[int], node_id: int
    ) -> int:
        """Online probed sections into a NUMA node; returns bytes added."""
        if node_id not in self.topology:
            raise HotplugError(f"NUMA node {node_id} does not exist")
        added = 0
        for index in section_indices:
            section = self.sparse.online(index, node_id)
            self.pages.add_range(node_id, section.range)
            added += section.range.size
        node = self.topology.node(node_id)
        node.resize(node.memory_bytes + added)
        self.hotplug_events.append(
            f"online {list(section_indices)} -> node{node_id}"
        )
        return added

    def hotplug_offline(self, section_indices: Sequence[int]) -> int:
        """Offline sections (fails -EBUSY style if pages are in use)."""
        removed = 0
        for index in section_indices:
            section = self.sparse.section(index)
            node_id = section.numa_node
            if node_id is None:
                raise HotplugError(f"section {index} not online")
            if self._allocated_in(node_id, section.range):
                raise HotplugError(
                    f"section {index} busy: allocated pages present "
                    "(migrate first)"
                )
            self.sparse.begin_offline(index)
            captured = self.pages.drain_range(node_id, section.range)
            expected = self.section_bytes // self.page_bytes
            if len(captured) != expected:
                raise HotplugError(
                    f"section {index}: drained {len(captured)} pages, "
                    f"expected {expected}"
                )
            self.sparse.finish_offline(index)
            node = self.topology.node(node_id)
            node.resize(node.memory_bytes - section.range.size)
            removed += section.range.size
        self.hotplug_events.append(f"offline {list(section_indices)}")
        return removed

    def hotplug_remove(self, section_indices: Sequence[int]) -> None:
        for index in section_indices:
            self.sparse.remove(index)
        self.hotplug_events.append(f"remove {list(section_indices)}")

    # -- process mappings ---------------------------------------------------------------
    def mmap(
        self,
        size: int,
        policy: PagePolicy = PagePolicy.LOCAL,
        nodes: Optional[Sequence[int]] = None,
        cpu_node: Optional[int] = None,
    ) -> Mapping:
        """Allocate an anonymous mapping of ``size`` bytes (page-rounded).

        For LOCAL/PREFERRED, ``cpu_node`` (default: first CPU node)
        determines the distance-sorted fallback order.
        """
        if size <= 0:
            raise AddressError(f"mapping size must be > 0: {size}")
        count = -(-size // self.page_bytes)
        if cpu_node is None:
            cpu_nodes = self.topology.cpu_nodes()
            cpu_node = cpu_nodes[0].node_id if cpu_nodes else 0
        if nodes is None:
            nodes = [cpu_node]
        fallback = [
            n.node_id
            for n in self.topology.nodes_by_distance(cpu_node)
            if n.node_id not in nodes
        ]
        pages = self.pages.allocate(
            count, policy=policy, nodes=nodes, fallback_order=fallback
        )
        mapping = Mapping(
            mapping_id=self._next_mapping_id,
            pages=pages,
            policy=policy,
            nodes=tuple(nodes),
            page_bytes=self.page_bytes,
        )
        self._next_mapping_id += 1
        self._mappings[mapping.mapping_id] = mapping
        return mapping

    def munmap(self, mapping: Mapping) -> None:
        if self._mappings.pop(mapping.mapping_id, None) is None:
            raise AddressError(f"mapping {mapping.mapping_id} unknown")
        self.pages.free(mapping.pages)
        mapping.pages = []

    def migrate_page(self, mapping: Mapping, page_index: int,
                     target_node: int) -> bool:
        """Move one mapped page to ``target_node`` (NUMA balancing).

        The page's *content* moves with it when a page copier is
        installed — migration must be invisible to the application.
        """
        page = mapping.pages[page_index]
        if page.node_id == target_node:
            return False
        replacement = self.pages.move_page(page, target_node)
        if replacement is None:
            return False
        if self.page_copier is not None:
            self.page_copier(
                page.address, replacement.address, self.page_bytes
            )
        mapping.pages[page_index] = replacement
        return True

    # -- pinned donor memory ----------------------------------------------------------
    def pin_contiguous(self, size: int, node_id: int) -> AddressRange:
        """Allocate + pin a physically-contiguous cacheline-aligned range.

        This is what the memory-stealing process does before registering
        its PASID: the donated region must be one consecutive effective
        range per section (§IV-A1).
        """
        if size % self.page_bytes:
            size = (size // self.page_bytes + 1) * self.page_bytes
        pinned = self.pages.take_contiguous(node_id, size // self.page_bytes)
        self._pinned.append(pinned)
        return pinned

    def unpin(self, pinned: AddressRange) -> None:
        try:
            self._pinned.remove(pinned)
        except ValueError:
            raise AddressError(f"range {pinned!r} was not pinned") from None
        self.pages.release_contiguous(pinned)

    @property
    def pinned_ranges(self) -> List[AddressRange]:
        return list(self._pinned)

    # -- internals ------------------------------------------------------------------------
    def _allocated_in(self, node_id: int, physical: AddressRange) -> bool:
        return self.pages.has_allocated_in(node_id, physical)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LinuxKernel({self.hostname!r}, nodes={self.topology.node_ids}, "
            f"sections={len(self.sparse)})"
        )
