"""End-to-end tests: ThymesisFlow over the packet-switched fabric."""

import pytest

from repro.mem import CACHELINE_BYTES, MIB
from repro.testbed import PacketRackTestbed


class TestPacketRack:
    @pytest.fixture(scope="class")
    def rack(self):
        return PacketRackTestbed(nodes=4)

    def test_functional_roundtrip(self, rack):
        attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
        window = rack.remote_window_range(attachment)
        payload = bytes(range(128))
        rack.node("node0").run_store(window.start, payload)
        assert rack.node("node0").run_load(window.start) == payload
        assert rack.switch.frames_forwarded > 0
        rack.detach(attachment)

    def test_no_setup_blackout(self, rack):
        """Unlike the circuit fabric, the first frame flows immediately."""
        attachment = rack.attach("node0", 1 * MIB, memory_host="node2")
        window = rack.remote_window_range(attachment)
        start = rack.sim.now
        rack.node("node0").run_store(window.start, b"\x11" * 128)
        # No 20 µs reconfiguration wait anywhere in the path.
        assert rack.sim.now - start < 10e-6
        rack.detach(attachment)

    def test_rtt_pays_store_and_forward(self, rack):
        attachment = rack.attach("node0", 1 * MIB, memory_host="node3")
        window = rack.remote_window_range(attachment)
        for _ in range(8):
            rack.node("node0").run_load(window.start)
        rtt = rack.node("node0").device.compute.rtt.mean
        # Circuit rack: ~1.46 µs; packet adds higher per-hop forwarding.
        assert 1.3e-6 <= rtt <= 2.5e-6
        rack.detach(attachment)

    def test_session_repointing_with_bringup(self, rack):
        a = rack.attach("node0", 1 * MIB, memory_host="node1")
        wa = rack.remote_window_range(a)
        rack.node("node0").run_store(wa.start, b"\x22" * 128)
        rack.detach(a)
        b = rack.attach("node0", 1 * MIB, memory_host="node2")
        wb = rack.remote_window_range(b)
        rack.node("node0").run_store(wb.start, b"\x33" * 128)
        assert rack.node("node0").run_load(wb.start) == b"\x33" * 128
        rack.detach(b)

    def test_concurrent_pairs(self, rack):
        a = rack.attach("node0", 1 * MIB, memory_host="node1")
        b = rack.attach("node2", 1 * MIB, memory_host="node3")
        wa = rack.remote_window_range(a)
        wb = rack.remote_window_range(b)
        rack.node("node0").run_store(wa.start, b"\xaa" * 128)
        rack.node("node2").run_store(wb.start, b"\xbb" * 128)
        assert rack.node("node0").run_load(wa.start) == b"\xaa" * 128
        assert rack.node("node2").run_load(wb.start) == b"\xbb" * 128
        rack.detach(a)
        rack.detach(b)

    def test_sessions_released_on_detach(self, rack):
        attachment = rack.attach("node0", 1 * MIB, memory_host="node1")
        assert rack.driver.circuits()
        rack.detach(attachment)
        assert rack.driver.circuits() == []
        for uplink in rack.uplinks.values():
            assert uplink.destination_port is None

    def test_session_conflict_detected(self, rack):
        a = rack.attach("node0", 1 * MIB, memory_host="node1")
        b = rack.attach("node0", 1 * MIB, memory_host="node2")
        with pytest.raises(Exception):
            rack.attach("node0", 1 * MIB, memory_host="node3")
        rack.detach(a)
        rack.detach(b)
