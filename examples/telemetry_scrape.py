#!/usr/bin/env python3
"""Telemetry scrape-and-plot: Prometheus exposition over the REST API.

Runs a small remote-memory workload on the three-node prototype, wires
the metrics registry into the control plane's REST API, scrapes
``GET /v1/metrics`` exactly like a Prometheus server would, strict-
parses the exposition, and renders two ASCII charts from the scraped
samples — per-node load/store mix and per-link bytes on the wire.
Everything is stdlib-only.

Run:  python examples/telemetry_scrape.py
"""

from repro.control import RestApi
from repro.mem import MIB
from repro.obs import MetricsRegistry, parse_prometheus
from repro.testbed import Testbed

KIB = 1024
BAR_WIDTH = 40


def bar_chart(title, rows):
    """Aligned ASCII horizontal bars for {label: value} rows."""
    print(f"\n{title}")
    if not rows:
        print("  (no samples)")
        return
    label_width = max(len(label) for label, _ in rows)
    peak = max(value for _, value in rows) or 1
    for label, value in rows:
        bar = "#" * max(1 if value else 0, round(value / peak * BAR_WIDTH))
        print(f"  {label:<{label_width}}  {value:>10,.0f}  {bar}")


def main() -> None:
    print("Building the prototype and driving traffic...")
    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    payload = bytes(range(256)) * 64  # 16 KiB
    for index in range(8):
        testbed.node0.run_store(window.start + index * len(payload), payload)
    for index in range(8):
        testbed.node0.run_load(window.start + index * len(payload))

    print("Wiring the registry into the REST API and scraping "
          "/v1/metrics...")
    registry = MetricsRegistry()
    testbed.register_observability(registry)
    api = RestApi(testbed.plane, registry=registry)
    status, body = api.handle(
        "GET", "/v1/metrics", token=testbed.admin_token
    )
    assert status == 200, f"scrape failed: {body}"
    print(f"  content type: {body['content_type']}")

    # A real scraper would hand the body to its exposition parser; we
    # use the strict one the test suite trusts.
    parsed = parse_prometheus(body["body"])
    print(
        f"  scraped {len(parsed['samples'])} series across "
        f"{len(parsed['types'])} metric families"
    )

    def series(family):
        return [
            (dict(labels), value)
            for (name, labels), value in sorted(parsed["samples"].items())
            if name == family
        ]

    mix = []
    for family, verb in (("bus_loads", "loads"), ("bus_stores", "stores")):
        for labels, value in series(family):
            if value:
                mix.append((f"{labels['node']} {verb}", value))
    bar_chart("per-node load/store mix (scraped)", mix)

    wire = [
        (labels["link"], value)
        for labels, value in series("link_bytes_sent")
        if value
    ]
    bar_chart("bytes on the wire per link (scraped)", wire)

    # The exposition reflects live counters: scrape again after more
    # traffic and the deltas show up.
    for _ in range(16):
        testbed.node0.run_load(window.start)
    _status, body = api.handle(
        "GET", "/v1/metrics", token=testbed.admin_token
    )
    reparsed = parse_prometheus(body["body"])

    def loads_of(samples):
        return samples[
            ("bus_loads", (("bus", "node0.bus"), ("node", "node0")))
        ]

    before = loads_of(parsed["samples"])
    after = loads_of(reparsed["samples"])
    print(
        f"\nsecond scrape: node0 bus_loads {before:.0f} -> {after:.0f} "
        f"(+{after - before:.0f} since the first scrape) — scrape OK"
    )


if __name__ == "__main__":
    main()
