# Verbatim copy of the seed simulation kernel (commit 5b6f256), kept so
# the perf harness can measure the optimized kernel against the exact
# baseline it replaced. Do not "fix" or optimize this file.
"""Deterministic discrete-event simulation kernel.

Every timed component in the ThymesisFlow reproduction (serdes lanes, LLC
framers, DRAM banks, application thread pools) runs on this engine. The
design goals are:

* **Determinism** — events scheduled for the same timestamp fire in a
  stable order (priority, then insertion sequence), so simulations are
  bit-reproducible for a given seed.
* **Coroutine processes** — model code is written as generators that
  ``yield`` waitable objects (:class:`Timeout`, :class:`Signal`,
  :class:`Process`), in the style of SimPy, which keeps pipeline stages
  readable.
* **No wall-clock dependence** — simulated time is a plain ``float`` of
  seconds; nothing here ever consults the host clock.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Simulator",
    "Process",
    "Timeout",
    "Signal",
    "Interrupt",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (e.g. yielding junk)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class _Waitable:
    """Base class for things a process may ``yield``.

    A waitable either completes immediately (``triggered``) or records the
    waiting process and resumes it later via ``_resume``.
    """

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        raise NotImplementedError


class Timeout(_Waitable):
    """Suspend the yielding process for ``delay`` simulated seconds.

    The optional ``value`` is returned from the ``yield`` expression,
    which is occasionally handy for modelling data that arrives with a
    fixed latency.
    """

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay!r}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        sim.schedule(self.delay, process._resume, self.value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay!r})"


class Signal(_Waitable):
    """A one-shot or reusable event that processes can wait on.

    ``fire(value)`` wakes every currently-waiting process with ``value``.
    By default a signal is *reusable*: after firing it resets and can be
    waited on again (useful for "new frame arrived" notifications).  Pass
    ``oneshot=True`` for latching semantics: once fired, later waiters
    resume immediately with the fired value.
    """

    def __init__(self, name: str = "", oneshot: bool = False):
        self.name = name
        self.oneshot = oneshot
        self.fired = False
        self.value: Any = None
        self._waiters: List[Process] = []

    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        if self.oneshot and self.fired:
            sim.schedule(0.0, process._resume, self.value)
        else:
            self._waiters.append(process)

    def fire(self, value: Any = None) -> None:
        """Wake all waiters, delivering ``value`` from their ``yield``."""
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process.sim.schedule(0.0, process._resume, value)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else "pending"
        return f"Signal({self.name!r}, {state})"


class Process(_Waitable):
    """A coroutine running inside the simulator.

    Wraps a generator; each ``yield`` hands a :class:`_Waitable` to the
    kernel. A process is itself waitable: yielding a process suspends the
    yielder until the target returns, delivering its return value.
    """

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.alive = True
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._joiners: List[Process] = []
        self._join_signal = Signal(name=f"{self.name}.done", oneshot=True)
        self._pending_interrupt: Optional[Interrupt] = None

    # -- waitable protocol -------------------------------------------------
    def _subscribe(self, sim: "Simulator", process: "Process") -> None:
        if not self.alive:
            sim.schedule(0.0, process._resume, self.result)
        else:
            self._joiners.append(process)

    # -- kernel internals --------------------------------------------------
    def _resume(self, value: Any = None) -> None:
        if not self.alive:
            return
        try:
            if self._pending_interrupt is not None:
                exc, self._pending_interrupt = self._pending_interrupt, None
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None))
            return
        except Interrupt as exc:
            # An un-caught interrupt terminates the process quietly.
            self._finish(None, error=exc, raise_error=False)
            return
        except BaseException as exc:
            self._finish(None, error=exc, raise_error=True)
            return
        if not isinstance(target, _Waitable):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}; expected "
                "Timeout, Signal or Process"
            )
            self._finish(None, error=exc, raise_error=True)
            return
        target._subscribe(self.sim, self)

    def _finish(
        self,
        result: Any,
        error: Optional[BaseException] = None,
        raise_error: bool = False,
    ) -> None:
        self.alive = False
        self.result = result
        self.error = error
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self.sim.schedule(0.0, joiner._resume, result)
        self._join_signal.fire(result)
        if error is not None and raise_error:
            self.sim._record_crash(self, error)

    # -- public API ---------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume.

        The interrupt is delivered immediately (as a zero-delay event), so
        a process blocked on a long timeout wakes up now.
        """
        if not self.alive:
            return
        self._pending_interrupt = Interrupt(cause)
        self.sim.schedule(0.0, self._resume, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"Process({self.name!r}, {state})"


class Simulator:
    """The event loop: a priority queue of timestamped callbacks."""

    def __init__(self):
        self._queue: List[Tuple[float, int, int, Callable, tuple]] = []
        self._now = 0.0
        self._seq = itertools.count()
        self._crashed: List[Tuple[Process, BaseException]] = []
        self.event_count = 0

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable,
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, next(self._seq), callback, args),
        )

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register ``generator`` as a process and start it at time now."""
        proc = Process(self, generator, name=name)
        self.schedule(0.0, proc._resume, None)
        return proc

    # -- execution -----------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event. Returns False when queue empty."""
        if not self._queue:
            return False
        time, _priority, _seq, callback, args = heapq.heappop(self._queue)
        self._now = time
        self.event_count += 1
        callback(*args)
        self._raise_if_crashed()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Run until the queue drains or simulated time exceeds ``until``.

        Returns the simulated time at which execution stopped.  A
        ``max_events`` guard turns accidental infinite event loops into a
        loud failure instead of a hang.
        """
        events = 0
        while self._queue:
            next_time = self._queue[0][0]
            if until is not None and next_time > until:
                self._now = until
                break
            self.step()
            events += 1
            if events > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; probable livelock at "
                    f"t={self._now}"
                )
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return self._now

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run ``generator`` as a process to completion.

        Returns the process return value; re-raises any crash.
        """
        proc = self.process(generator, name=name)
        self.run()
        if proc.error is not None:
            raise proc.error
        if proc.alive:
            raise SimulationError(
                f"process {proc.name!r} did not finish (deadlock?)"
            )
        return proc.result

    # -- crash plumbing --------------------------------------------------------
    def _record_crash(self, process: Process, error: BaseException) -> None:
        self._crashed.append((process, error))

    def _raise_if_crashed(self) -> None:
        if self._crashed:
            process, error = self._crashed[0]
            self._crashed.clear()
            # Re-raise the original exception so callers can catch the
            # domain error type; annotate with the crashing process.
            if hasattr(error, "add_note"):  # Python 3.11+
                error.add_note(f"raised inside process {process.name!r}")
            raise error

    # -- helpers ----------------------------------------------------------------
    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Shorthand so model code reads ``yield sim.timeout(x)``."""
        return Timeout(delay, value)

    def all_of(self, waitables: Iterable[_Waitable]) -> Process:
        """A process completing when every waitable in the list has."""

        def _waiter():
            results = []
            for waitable in waitables:
                results.append((yield waitable))
            return results

        return self.process(_waiter(), name="all_of")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self._now!r}, pending={len(self._queue)})"
