"""Network substrate: serdes links, channels, CRC, faults, circuit switch."""

from .crc import check, crc32, frame_digest_bytes
from .faults import FaultDecision, FaultInjector
from .link import (
    AURORA_OVERHEAD,
    SERDES_CROSSING_S,
    ChannelEndpointView,
    DuplexChannel,
    LinkConfig,
    SerialLink,
)
from .packet import Addressed, PacketSwitch, PacketSwitchError
from .switch import CircuitSwitch, SwitchError, SwitchPort

__all__ = [
    "LinkConfig",
    "SerialLink",
    "DuplexChannel",
    "ChannelEndpointView",
    "AURORA_OVERHEAD",
    "SERDES_CROSSING_S",
    "FaultInjector",
    "FaultDecision",
    "CircuitSwitch",
    "PacketSwitch",
    "PacketSwitchError",
    "Addressed",
    "SwitchError",
    "SwitchPort",
    "crc32",
    "frame_digest_bytes",
    "check",
]
