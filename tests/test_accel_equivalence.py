"""Differential tests: numpy backend vs the pure-Python reference.

The accel backend swaps the implementation of the hot timing kernels,
never the model: a scenario simulated under ``REPRO_BACKEND=numpy``
must produce byte-identical payloads, bit-identical simulated time and
identical protocol counters to the same scenario under
``REPRO_BACKEND=python``. These tests run full end-to-end scenarios —
STREAM bulk transfer, per-cacheline pingpong, and a seeded chaos
campaign — once per backend and diff every externally visible output.
"""

import json

import pytest

from repro import accel
from repro.mem import MIB
from repro.obs import MetricsRegistry
from repro.testbed import Testbed

from test_bulk_equivalence import _assert_equivalent, _snapshot, _stream_scenario

requires_numpy = pytest.mark.skipif(
    "numpy" not in accel.available_backends(),
    reason="numpy backend unavailable",
)


def _metrics_snapshot(testbed):
    registry = MetricsRegistry("accel-equivalence")
    testbed.register_observability(registry)
    return registry.snapshot()


def _per_backend(scenario):
    """Run ``scenario()`` once per backend; return both results."""
    with accel.use_backend("python"):
        reference = scenario()
    with accel.use_backend("numpy"):
        accelerated = scenario()
    return reference, accelerated


@requires_numpy
class TestStreamEquivalence:
    """Bulk write + read-back: the batched burst datapath end to end."""

    @pytest.mark.parametrize("batched", [True, False])
    def test_payload_counters_and_metrics_identical(self, batched):
        def scenario():
            testbed, data, blob = _stream_scenario(batched=batched)
            return testbed, bytes(data), blob

        (tb_ref, data_ref, blob), (tb_np, data_np, _) = _per_backend(scenario)
        assert data_ref == blob
        assert data_np == blob
        _assert_equivalent(_snapshot(tb_ref), _snapshot(tb_np))
        assert _metrics_snapshot(tb_ref) == _metrics_snapshot(tb_np)


@requires_numpy
class TestPingpongEquivalence:
    """Per-cacheline load/store roundtrips (latency-bound path)."""

    def test_rtt_distribution_identical(self):
        def scenario():
            testbed = Testbed()
            attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
            window = testbed.remote_window_range(attachment)
            payload = bytes(range(128))
            reads = []
            for index in range(48):
                address = window.start + index * 128
                testbed.node0.run_store(address, payload)
                reads.append(bytes(testbed.node0.run_load(address)))
            return testbed, reads, payload

        (tb_ref, reads_ref, payload), (tb_np, reads_np, _) = _per_backend(
            scenario
        )
        assert all(item == payload for item in reads_ref)
        assert reads_ref == reads_np
        _assert_equivalent(_snapshot(tb_ref), _snapshot(tb_np))
        assert _metrics_snapshot(tb_ref) == _metrics_snapshot(tb_np)


@requires_numpy
class TestChaosEquivalence:
    """A seeded fault-recovery campaign: replay, failover, journal."""

    def test_scenario_artifact_byte_identical(self):
        from repro.resilience import run_scenario

        def scenario():
            return run_scenario("link-kill-failover", seed=7)

        reference, accelerated = _per_backend(scenario)
        assert reference["verified"]
        # The full JSON artifact — the chaos CLI's --out payload — must
        # serialize to the same bytes under either backend.
        canonical_ref = json.dumps(reference, sort_keys=True)
        canonical_np = json.dumps(accelerated, sort_keys=True)
        assert canonical_ref == canonical_np


@requires_numpy
class TestKernelThresholdConsistency:
    """Below VECTOR_MIN the numpy backend delegates to the reference —
    both sides of the threshold must agree anyway."""

    def test_schedule_agrees_across_threshold(self):
        from repro.accel import numpy_backend, python_backend

        for count in (1, numpy_backend.VECTOR_MIN - 1,
                      numpy_backend.VECTOR_MIN, 64):
            sizes = [64 + 17 * i for i in range(count)]
            assert numpy_backend.serialization_schedule(
                3.25e-6, sizes, 9.6969e10
            ) == python_backend.serialization_schedule(
                3.25e-6, sizes, 9.6969e10
            )
