"""Open-loop load generation against the control-plane HTTP server.

The throughput-vs-latency story for ROADMAP item 4: drive
:class:`~repro.control.server.ControlServer` with stages of rising
request rate and measure what a multi-tenant control plane does at and
past saturation — does p99 stay bounded because admission control
sheds, or does the queue grow without bound and take every tenant's
latency with it?

The generator is **open-loop**: arrivals follow a seeded exponential
(Poisson) process at the stage's rate and are *not* gated on earlier
responses finishing. Latency is measured from the *scheduled* arrival
time, so a stalled server shows up as growing latency instead of
quietly lowering the offered rate (the coordinated-omission trap that
makes closed-loop generators flatter overloaded servers).

Two operation kinds, mixed per arrival:

* ``read`` — ``GET /v1/state``: the cheap observability path.
* ``attach_cycle`` — ``POST /v1/attachments``, hold, a timed
  ``GET /v1/attachments/{id}`` (the *validation read* — "did the plane
  commit what it told me?"), ``DELETE``. Validation latencies feed the
  run-wide CDF.

Everything is stdlib; the report is a plain dict that
``python -m repro loadtest`` serialises to ``BENCH_control.json``.
"""

from __future__ import annotations

import asyncio
import random
import resource
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from .server import http_request

__all__ = [
    "LoadStage",
    "LoadgenConfig",
    "TenantTraffic",
    "run_loadgen",
    "run_control_benchmark",
    "smoke_config",
    "full_config",
    "percentile",
    "cdf_points",
]


@dataclass(frozen=True)
class LoadStage:
    """One constant-rate segment of the schedule."""

    rate_rps: float
    duration_s: float


@dataclass(frozen=True)
class TenantTraffic:
    """One traffic source: a credential plus its share of arrivals."""

    name: str
    token: str
    weight: float = 1.0


@dataclass(frozen=True)
class LoadgenConfig:
    stages: Tuple[LoadStage, ...]
    seed: int = 20
    #: Fraction of arrivals that run the attach→validate→detach cycle
    #: (the rest are state reads).
    attach_fraction: float = 0.2
    attach_size: int = 1 << 20
    compute_host: str = "node0"
    #: Seconds an attach is held before validation + detach — this is
    #: what builds *concurrent* live attachments and exercises quotas.
    hold_s: float = 0.05
    request_timeout_s: float = 30.0


class _StageStats:
    def __init__(self, stage: LoadStage):
        self.stage = stage
        self.offered = 0
        self.completed = 0
        self.ok = 0
        self.by_status: Dict[str, int] = {}
        self.by_code: Dict[str, int] = {}
        self.latencies_s: List[float] = []
        self.conn_errors = 0
        self.wall_s = 0.0

    def record(self, status: int, code: Optional[str], latency_s: float):
        self.completed += 1
        self.by_status[str(status)] = self.by_status.get(str(status), 0) + 1
        if code:
            self.by_code[code] = self.by_code.get(code, 0) + 1
        if status < 400:
            self.ok += 1
        self.latencies_s.append(latency_s)

    def describe(self) -> Dict:
        lat = sorted(self.latencies_s)
        return {
            "rate_rps": self.stage.rate_rps,
            "duration_s": self.stage.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "ok": self.ok,
            "conn_errors": self.conn_errors,
            "by_status": dict(sorted(self.by_status.items())),
            "by_code": dict(sorted(self.by_code.items())),
            "throughput_rps": (
                self.ok / self.wall_s if self.wall_s > 0 else 0.0
            ),
            "latency_ms": {
                "p50": percentile(lat, 50) * 1e3,
                "p95": percentile(lat, 95) * 1e3,
                "p99": percentile(lat, 99) * 1e3,
                "max": (lat[-1] * 1e3) if lat else 0.0,
            },
        }


def percentile(sorted_values: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(pct / 100.0 * len(sorted_values))) - 1))
    return sorted_values[rank]


def cdf_points(latencies_s: Sequence[float], points: int = 50) -> List[List[float]]:
    """``[latency_ms, cumulative_fraction]`` pairs for plotting."""
    values = sorted(latencies_s)
    if not values:
        return []
    out: List[List[float]] = []
    for i in range(1, points + 1):
        frac = i / points
        idx = min(len(values) - 1, max(0, int(frac * len(values)) - 1))
        out.append([values[idx] * 1e3, frac])
    return out


async def run_loadgen(
    host: str,
    port: int,
    tenants: Sequence[TenantTraffic],
    config: LoadgenConfig,
) -> Dict:
    """Drive the server through every stage; return the report dict."""
    rng = random.Random(config.seed)
    weights = [t.weight for t in tenants]
    validation_latencies: List[float] = []
    stage_reports: List[Dict] = []

    async def read_op(stats: _StageStats, token: str, scheduled: float):
        try:
            status, _headers, body = await http_request(
                host, port, "GET", "/v1/state",
                token=token, timeout_s=config.request_timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            stats.conn_errors += 1
            return
        code = body.get("code") if isinstance(body, dict) else None
        stats.record(status, code, perf_counter() - scheduled)

    async def attach_cycle_op(stats: _StageStats, token: str, scheduled: float):
        try:
            status, _headers, body = await http_request(
                host, port, "POST", "/v1/attachments",
                body={
                    "compute_host": config.compute_host,
                    "size": config.attach_size,
                },
                token=token, timeout_s=config.request_timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            stats.conn_errors += 1
            return
        code = body.get("code") if isinstance(body, dict) else None
        stats.record(status, code, perf_counter() - scheduled)
        if status != 201:
            return  # shed / quota-denied: the cycle ends here
        attachment_id = body["id"]
        if config.hold_s > 0:
            await asyncio.sleep(config.hold_s)
        try:
            started = perf_counter()
            vstatus, _h, _b = await http_request(
                host, port, "GET", f"/v1/attachments/{attachment_id}",
                token=token, timeout_s=config.request_timeout_s,
            )
            if vstatus == 200:
                validation_latencies.append(perf_counter() - started)
            # The detach may itself be shed under overload; retry with
            # backoff until admitted (the retry budget outlasts any
            # stage, and overload ends when the stage does) so held
            # capacity and the tenant's quota are always returned.
            for attempt in range(60):
                dstatus, _h, _b = await http_request(
                    host, port, "DELETE",
                    f"/v1/attachments/{attachment_id}",
                    token=token, timeout_s=config.request_timeout_s,
                )
                if dstatus != 503:
                    break
                await asyncio.sleep(min(0.2, 0.05 * (attempt + 1)))
        except (OSError, asyncio.TimeoutError):
            stats.conn_errors += 1

    for stage in config.stages:
        stats = _StageStats(stage)
        tasks: List[asyncio.Task] = []
        loop = asyncio.get_running_loop()
        stage_start = perf_counter()
        elapsed = 0.0
        while True:
            elapsed += rng.expovariate(stage.rate_rps)
            if elapsed >= stage.duration_s:
                break
            # Open loop: sleep until the scheduled arrival, then fire
            # without waiting for the previous arrival's response.
            delay = (stage_start + elapsed) - perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            scheduled = stage_start + elapsed
            tenant = rng.choices(tenants, weights=weights)[0]
            stats.offered += 1
            if rng.random() < config.attach_fraction:
                op = attach_cycle_op(stats, tenant.token, scheduled)
            else:
                op = read_op(stats, tenant.token, scheduled)
            tasks.append(loop.create_task(op))
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        stats.wall_s = max(perf_counter() - stage_start, stage.duration_s)
        stage_reports.append(stats.describe())

    validation_sorted = sorted(validation_latencies)
    totals = {
        "offered": sum(s["offered"] for s in stage_reports),
        "completed": sum(s["completed"] for s in stage_reports),
        "ok": sum(s["ok"] for s in stage_reports),
        "conn_errors": sum(s["conn_errors"] for s in stage_reports),
        "quota_429": sum(
            s["by_code"].get("control/quota-exceeded", 0)
            for s in stage_reports
        ),
        "shed_503": sum(
            s["by_code"].get("server/overloaded", 0)
            + s["by_code"].get("control/no-headroom", 0)
            for s in stage_reports
        ),
    }
    return {
        "config": {
            "seed": config.seed,
            "attach_fraction": config.attach_fraction,
            "attach_size": config.attach_size,
            "hold_s": config.hold_s,
            "stages": [
                {"rate_rps": s.rate_rps, "duration_s": s.duration_s}
                for s in config.stages
            ],
            "tenants": [
                {"name": t.name, "weight": t.weight} for t in tenants
            ],
        },
        "stages": stage_reports,
        "validation": {
            "count": len(validation_sorted),
            "latency_ms": {
                "p50": percentile(validation_sorted, 50) * 1e3,
                "p95": percentile(validation_sorted, 95) * 1e3,
                "p99": percentile(validation_sorted, 99) * 1e3,
            },
            "cdf": cdf_points(validation_sorted),
        },
        "totals": totals,
        "peak_rss_kib": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


# -- the standard three-tenant benchmark harness ------------------------------------------


def smoke_config() -> LoadgenConfig:
    """Short preset for CI: seconds of wall time, still reaches shed."""
    return LoadgenConfig(
        stages=(
            LoadStage(rate_rps=40, duration_s=1.0),
            LoadStage(rate_rps=150, duration_s=1.0),
            LoadStage(rate_rps=1400, duration_s=1.5),
        ),
    )


def full_config() -> LoadgenConfig:
    """The real curve: five stages from idle to well past saturation."""
    return LoadgenConfig(
        stages=(
            LoadStage(rate_rps=25, duration_s=3.0),
            LoadStage(rate_rps=75, duration_s=3.0),
            LoadStage(rate_rps=200, duration_s=3.0),
            LoadStage(rate_rps=450, duration_s=3.0),
            LoadStage(rate_rps=2000, duration_s=3.0),
        ),
    )


async def _run_benchmark_async(config: LoadgenConfig, queue_depth: int) -> Dict:
    # Imported lazily: repro.testbed imports repro.control, and this
    # module must stay importable from repro.control without a cycle.
    from ..obs.metrics import MetricsRegistry
    from ..testbed.prototype import Testbed
    from .api import RestApi
    from .qos import QosClass
    from .server import ControlServer, ServerConfig

    testbed = Testbed()
    testbed.plane.best_effort_reserve = 0.25
    registry = MetricsRegistry()
    api = RestApi(testbed.plane, registry=registry)
    tenants = [
        TenantTraffic(
            name="gold", weight=0.2,
            token=testbed.plane.register_tenant(
                "gold", qos=QosClass.GUARANTEED,
            ),
        ),
        TenantTraffic(
            name="silver", weight=0.4,
            token=testbed.plane.register_tenant(
                "silver", qos=QosClass.BURSTABLE,
                max_attachments=24, max_bytes=64 << 20,
            ),
        ),
        TenantTraffic(
            name="bronze", weight=0.4,
            token=testbed.plane.register_tenant(
                "bronze", qos=QosClass.BEST_EFFORT,
                max_attachments=4, max_bytes=8 << 20,
            ),
        ),
    ]
    server = ControlServer(
        api,
        ServerConfig(workers=4, max_queue_depth=queue_depth),
        registry=registry,
    )
    await server.start()
    try:
        report = await run_loadgen("127.0.0.1", server.port, tenants, config)
    finally:
        await server.drain()
    report["server"] = {
        "workers": server.config.workers,
        "max_queue_depth": queue_depth,
        "requests_served": server.requests_served,
        "queue_pushed": server.queue.pushed,
        "queue_shed": server.queue.shed_count,
    }
    report["tenant_usage"] = testbed.plane.quotas.describe()
    return report


def run_control_benchmark(
    smoke: bool = False,
    config: Optional[LoadgenConfig] = None,
    queue_depth: int = 64,
) -> Dict:
    """Boot a testbed + server, run the standard load test, report.

    Three tenants exercise the three QoS classes: ``gold``
    (guaranteed, unmetered), ``silver`` (burstable, roomy quota) and
    ``bronze`` (best-effort, tight quota + the planner's best-effort
    reserve) — so a full run demonstrates *both* shed paths: bronze's
    429s (quota) and everyone's 503s once the admission queue fills.
    """
    if config is None:
        config = smoke_config() if smoke else full_config()
    return asyncio.run(_run_benchmark_async(config, queue_depth))
