"""OS support: sparse sections, hotplug, NUMA nodes/policies, migration, agent."""

from .agent import AgentError, AttachPlan, StealGrant, ThymesisFlowAgent
from .kernel import HotplugError, LinuxKernel, Mapping
from .migration import MigrationStats, NumaBalancer
from .pages import (
    DEFAULT_PAGE_BYTES,
    OutOfMemory,
    Page,
    PageAllocator,
    PagePolicy,
)
from .sections import MemorySection, SectionState, SparseMemoryModel

__all__ = [
    "LinuxKernel",
    "Mapping",
    "HotplugError",
    "SparseMemoryModel",
    "MemorySection",
    "SectionState",
    "PageAllocator",
    "Page",
    "PagePolicy",
    "OutOfMemory",
    "DEFAULT_PAGE_BYTES",
    "NumaBalancer",
    "MigrationStats",
    "ThymesisFlowAgent",
    "AttachPlan",
    "StealGrant",
    "AgentError",
]
