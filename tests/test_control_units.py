"""Unit tests for the control-plane pieces in isolation: state graph,
path planner, and the agent's attach/detach mechanics."""

import pytest

from repro.control import (
    GraphError,
    NoPathError,
    NodeKind,
    PathPlanner,
    StateGraph,
)
from repro.core import ThymesisFlowDevice
from repro.mem import AddressRange, MIB
from repro.opencapi import PasidRegistry
from repro.osmodel import AgentError, AttachPlan, LinuxKernel, ThymesisFlowAgent
from repro.sim import Simulator


def two_host_graph(transceivers=2, donor=1 << 30):
    state = StateGraph()
    state.add_host("a", transceivers=transceivers, donor_capacity_bytes=donor)
    state.add_host("b", transceivers=transceivers, donor_capacity_bytes=donor)
    for channel in range(transceivers):
        state.add_cable(state.xcvr("a", channel), state.xcvr("b", channel))
    return state


class TestStateGraph:
    def test_host_registration_creates_nodes(self):
        state = two_host_graph()
        snapshot = state.snapshot()
        assert snapshot["a/cep"]["kind"] == "compute"
        assert snapshot["a/mep"]["kind"] == "memory"
        assert snapshot["a/x0"]["kind"] == "transceiver"

    def test_duplicate_host_rejected(self):
        state = two_host_graph()
        with pytest.raises(GraphError):
            state.add_host("a", transceivers=1)

    def test_cable_requires_cableable_endpoints(self):
        state = two_host_graph()
        with pytest.raises(GraphError):
            state.add_cable(state.cep("a"), state.xcvr("b", 0))
        with pytest.raises(GraphError):
            state.add_cable("ghost/x0", state.xcvr("b", 0))

    def test_reservation_capacity(self):
        state = StateGraph()
        state.add_host("a", transceivers=1, channel_capacity=2)
        xcvr = state.xcvr("a", 0)
        state.reserve([xcvr])
        state.reserve([xcvr])
        with pytest.raises(GraphError):
            state.reserve([xcvr])
        state.release([xcvr])
        state.reserve([xcvr])

    def test_release_without_reserve_rejected(self):
        state = two_host_graph()
        with pytest.raises(GraphError):
            state.release([state.xcvr("a", 0)])

    def test_donor_accounting(self):
        state = two_host_graph(donor=1000)
        state.reserve_donor_memory("b", 800)
        assert state.donor_free("b") == 200
        with pytest.raises(GraphError):
            state.reserve_donor_memory("b", 300)
        state.release_donor_memory("b", 800)
        assert state.donor_free("b") == 1000

    def test_hosts_listing(self):
        state = two_host_graph()
        assert state.hosts() == ["a", "b"]


class TestPathPlanner:
    def test_direct_path_found(self):
        state = two_host_graph()
        planner = PathPlanner(state)
        path = planner.plan("a", "b")
        assert path.compute_host == "a"
        assert path.channel_indices in ((0,), (1,))
        assert path.hop_count == 2  # two transceivers, no switch

    def test_bonded_paths_are_disjoint(self):
        state = two_host_graph()
        planner = PathPlanner(state)
        path = planner.plan("a", "b", channels=2)
        assert sorted(path.channel_indices) == [0, 1]
        assert len(set(path.reserved_nodes)) == len(path.reserved_nodes)

    def test_bonding_impossible_with_one_cable(self):
        state = StateGraph()
        state.add_host("a", transceivers=2)
        state.add_host("b", transceivers=2)
        state.add_cable(state.xcvr("a", 0), state.xcvr("b", 0))
        planner = PathPlanner(state)
        with pytest.raises(NoPathError):
            planner.plan("a", "b", channels=2)

    def test_exhausted_capacity_blocks_planning(self):
        state = StateGraph()
        state.add_host("a", transceivers=1, channel_capacity=1)
        state.add_host("b", transceivers=1, channel_capacity=1,
                       donor_capacity_bytes=1 << 30)
        state.add_cable(state.xcvr("a", 0), state.xcvr("b", 0))
        planner = PathPlanner(state)
        first = planner.plan("a", "b")
        with pytest.raises(NoPathError):
            planner.plan("a", "b")
        planner.release(first)
        planner.plan("a", "b")

    def test_path_through_switch(self):
        state = StateGraph()
        state.add_host("a", transceivers=1)
        state.add_host("b", transceivers=1, donor_capacity_bytes=1 << 30)
        state.add_switch("sw", ports=4)
        state.add_cable(state.xcvr("a", 0), state.switch_port("sw", 0))
        state.add_cable(state.xcvr("b", 0), state.switch_port("sw", 2))
        planner = PathPlanner(state)
        path = planner.plan("a", "b")
        assert path.hop_count == 4  # xcvr, port, port, xcvr
        assert any("sw/p" in node for node in path.reserved_nodes)

    def test_direct_path_preferred_over_switch(self):
        state = two_host_graph()
        state.add_switch("sw", ports=4)
        state.add_cable(state.xcvr("a", 1), state.switch_port("sw", 0))
        state.add_cable(state.xcvr("b", 1), state.switch_port("sw", 1))
        planner = PathPlanner(state)
        # Remove the direct cable on channel 1 so channel 0 is direct and
        # channel 1 goes through the switch; shortest wins.
        path = planner.plan("a", "b")
        assert path.hop_count == 2

    def test_same_host_rejected(self):
        planner = PathPlanner(two_host_graph())
        with pytest.raises(GraphError):
            planner.plan("a", "a")

    def test_unknown_host_rejected(self):
        planner = PathPlanner(two_host_graph())
        with pytest.raises(NoPathError):
            planner.plan("a", "ghost")

    def test_pick_donor_prefers_most_free(self):
        state = StateGraph()
        state.add_host("a", transceivers=2)
        state.add_host("b", transceivers=2, donor_capacity_bytes=100)
        state.add_host("c", transceivers=2, donor_capacity_bytes=500)
        state.add_cable(state.xcvr("a", 0), state.xcvr("b", 0))
        state.add_cable(state.xcvr("a", 1), state.xcvr("c", 0))
        planner = PathPlanner(state)
        assert planner.pick_donor("a", 50) == "c"
        assert planner.pick_donor("a", 50, exclude=("c",)) == "b"
        with pytest.raises(NoPathError):
            planner.pick_donor("a", 10_000)


class TestAgentMechanics:
    def make_agent(self):
        sim = Simulator()
        kernel = LinuxKernel("host", section_bytes=1 * MIB)
        kernel.add_boot_memory(0, AddressRange(0, 64 * MIB), cpu_count=8)
        device = ThymesisFlowDevice(sim, section_bytes=1 * MIB)
        from repro.opencapi import SystemBus

        bus = SystemBus(sim)
        pasids = PasidRegistry()
        device.attach_compute(bus, AddressRange(0x1_0000_0000, 16 * MIB))
        device.enable_memory_role(bus, pasids)
        return ThymesisFlowAgent("host", kernel, device, pasids)

    def plan(self, sections=(0, 1), network_id=3):
        return AttachPlan(
            section_indices=list(sections),
            donor_effective_base=0x100000,
            wire_network_id=network_id,
            channels=[0],
            numa_node_id=50,
            numa_distance=112,
            remote_latency_s=950e-9,
        )

    def test_steal_rounds_to_sections(self):
        agent = self.make_agent()
        grant = agent.steal_memory(100)  # rounds up to 1 MiB
        assert grant.size == 1 * MIB
        assert agent.kernel.pinned_ranges[0].size == 1 * MIB

    def test_steal_registers_pasid_window(self):
        agent = self.make_agent()
        grant = agent.steal_memory(1 * MIB)
        agent.pasids.check_access(grant.pasid, grant.effective_base, 128)

    def test_release_grant_cleans_up(self):
        agent = self.make_agent()
        grant = agent.steal_memory(1 * MIB)
        agent.release_grant(grant)
        assert agent.kernel.pinned_ranges == []
        with pytest.raises(Exception):
            agent.release_grant(grant)

    def test_attach_requires_channel(self):
        agent = self.make_agent()
        # No channels connected: programming the route must fail and the
        # datapath stays unconfigured.
        with pytest.raises(Exception):
            agent.attach_remote_memory(self.plan())

    def test_attach_programs_rmmu_and_kernel(self):
        agent = self.make_agent()
        self._connect_channel(agent)
        attached = agent.attach_remote_memory(self.plan())
        assert attached == 2 * MIB
        assert agent.device.rmmu.installed_sections() == [0, 1]
        assert 50 in agent.kernel.topology
        assert agent.kernel.topology.node(50).memory_bytes == 2 * MIB

    def test_detach_reverses_attach(self):
        agent = self.make_agent()
        self._connect_channel(agent)
        plan = self.plan()
        agent.attach_remote_memory(plan)
        removed = agent.detach_remote_memory(plan)
        assert removed == 2 * MIB
        assert agent.device.rmmu.installed_sections() == []
        assert agent.kernel.topology.node(50).memory_bytes == 0

    def test_section_size_mismatch_detected(self):
        sim = Simulator()
        kernel = LinuxKernel("host", section_bytes=2 * MIB)
        kernel.add_boot_memory(0, AddressRange(0, 64 * MIB), cpu_count=8)
        device = ThymesisFlowDevice(sim, section_bytes=1 * MIB)
        from repro.opencapi import SystemBus

        bus = SystemBus(sim)
        device.attach_compute(bus, AddressRange(0x1_0000_0000, 16 * MIB))
        device.enable_memory_role(bus, PasidRegistry())
        agent = ThymesisFlowAgent("host", kernel, device, PasidRegistry())
        self._connect_channel(agent)
        with pytest.raises(AgentError, match="disagree"):
            agent.attach_remote_memory(self.plan())

    @staticmethod
    def _connect_channel(agent):
        from repro.net import DuplexChannel

        channel = DuplexChannel(agent.device.sim)
        agent.device.connect_channel(channel.endpoint_view("a"))
