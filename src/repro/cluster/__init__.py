"""Datacentre-scale motivation study (Fig. 1): trace, models, scheduler."""

from .models import (
    AllocationFailure,
    DisaggregatedDatacentre,
    FixedDatacentre,
    Placement,
)
from .simulation import (
    UtilizationReport,
    replay_trace,
    run_fig1_experiment,
    scaled_trace_config,
)
from .trace import (
    EventKind,
    TaskRequest,
    TraceConfig,
    TraceEvent,
    ratio_span_orders_of_magnitude,
    synthesize_trace,
)

__all__ = [
    "TaskRequest",
    "TraceEvent",
    "EventKind",
    "TraceConfig",
    "synthesize_trace",
    "ratio_span_orders_of_magnitude",
    "FixedDatacentre",
    "DisaggregatedDatacentre",
    "Placement",
    "AllocationFailure",
    "UtilizationReport",
    "replay_trace",
    "run_fig1_experiment",
    "scaled_trace_config",
]
