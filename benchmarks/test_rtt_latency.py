"""§V in-text claim — "hardware datapath flit RTT latency … roughly 950ns".

Drives single 128 B loads end-to-end through the full simulated stack
(bus → M1 → RMMU → routing → LLC → serdes/wire → LLC → C1 → donor DRAM
and back) and checks the unloaded RTT decomposition.
"""

import pytest
from conftest import print_table, save_results

from repro.mem import CACHELINE_BYTES, MIB
from repro.testbed import Testbed
from repro.testbed.calibration import PROTOTYPE_RTT_S, rtt_budget_s


def measure_rtt(samples: int = 32):
    testbed = Testbed()
    attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)
    # Issue sequential single loads so each one sees an unloaded path.
    for index in range(samples):
        testbed.node0.run_load(
            window.start + index * CACHELINE_BYTES, CACHELINE_BYTES
        )
    recorder = testbed.node0.device.compute.rtt
    return recorder.mean, recorder.percentile(99)


def test_rtt_latency(once):
    mean_rtt, p99_rtt = once(measure_rtt)
    budget = rtt_budget_s()
    print_table(
        "§V — unloaded remote-access RTT",
        ["quantity", "value (ns)", "paper"],
        [
            ("datapath budget (4xFPGA + 6xserdes + cables)",
             f"{budget * 1e9:.0f}", "~950"),
            ("measured mean RTT (incl. donor DRAM)",
             f"{mean_rtt * 1e9:.0f}", "~950 + memory"),
            ("measured p99 RTT", f"{p99_rtt * 1e9:.0f}", "-"),
        ],
    )
    save_results(
        "rtt",
        {
            "budget_ns": budget * 1e9,
            "mean_ns": mean_rtt * 1e9,
            "p99_ns": p99_rtt * 1e9,
        },
    )
    # The static budget reproduces the paper arithmetic within 5%.
    assert budget == pytest.approx(PROTOTYPE_RTT_S, rel=0.05)
    # The live path adds donor DRAM (~90ns) + framing/serialization.
    assert PROTOTYPE_RTT_S * 0.95 <= mean_rtt <= PROTOTYPE_RTT_S + 400e-9
