"""Synthetic Google ClusterData-like trace — paper §II / Fig. 1.

The motivation study "consumes entries from the publicly available
Google ClusterData trace and simulates resource allocation/deallocation
requests". The trace itself is multi-GB and not redistributable, so we
synthesize a request stream matching its published statistics (Reiss et
al. [1], [16]):

* 12 555 machines, capacities normalized to 1.0 per resource;
* task CPU and memory requests are small fractions of a machine,
  heavy-tailed (lognormal body);
* memory/CPU demand ratios "span across three orders of magnitude"
  (§I) — CPU and memory draws are only loosely correlated;
* tasks arrive over time and run for heavy-tailed durations.
"""

from __future__ import annotations

import enum
import hashlib
import heapq
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..sim.rng import SeededRNG

__all__ = ["TaskRequest", "TraceEvent", "EventKind", "TraceConfig",
           "synthesize_trace", "downsample_trace", "trace_window"]


class EventKind(enum.Enum):
    SUBMIT = "submit"
    FINISH = "finish"


@dataclass(frozen=True)
class TaskRequest:
    """One task's resource request (machine-normalized units)."""

    task_id: int
    cpu: float
    memory: float
    submit_time: float
    duration: float

    def __post_init__(self):
        if not 0 < self.cpu <= 1.0:
            raise ValueError(f"cpu request out of (0,1]: {self.cpu}")
        if not 0 < self.memory <= 1.0:
            raise ValueError(f"memory request out of (0,1]: {self.memory}")

    @property
    def memory_cpu_ratio(self) -> float:
        return self.memory / self.cpu


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: EventKind
    task: TaskRequest


@dataclass(frozen=True)
class TraceConfig:
    """Shape parameters of the synthetic trace.

    Defaults are calibrated so the Fig. 1 experiment reproduces the
    paper's utilization picture: a near-saturated datacentre where the
    fixed model strands CPU and (especially) memory inside
    partially-allocated servers.
    """

    tasks: int = 20_000
    seed: int = 17
    #: lognormal parameters of the CPU request (machine fraction).
    #: Calibrated so steady-state CPU demand saturates capacity — the
    #: regime in which the Fig. 1 fragmentation indices emerge.
    cpu_log_mean: float = -2.9885
    cpu_log_sigma: float = 1.1
    #: memory = cpu * ratio; the ratio's spread gives the 3-orders-of-
    #: magnitude memory/CPU range the paper cites (sigma 1.4 ≈ 3.4
    #: decades between the 0.5th and 99.5th percentile). The mean ratio
    #: of 0.9 puts steady memory demand near 2/3 of capacity.
    ratio_log_mean: float = -1.0854
    ratio_log_sigma: float = 1.4
    #: mean task inter-arrival (arbitrary time units) and duration; at
    #: 0.8 the steady concurrency slightly exceeds CPU capacity, so the
    #: best-fit scheduler operates under queue pressure like the trace.
    mean_interarrival: float = 0.8
    mean_duration: float = 4_000.0

    def __post_init__(self):
        if self.tasks < 1:
            raise ValueError(f"tasks must be >= 1: {self.tasks}")


def synthesize_task(task_id: int, now: float, config: TraceConfig,
                    rng: SeededRNG) -> TaskRequest:
    cpu = min(1.0, max(1e-4, rng.lognormal(config.cpu_log_mean,
                                           config.cpu_log_sigma)))
    ratio = rng.lognormal(config.ratio_log_mean, config.ratio_log_sigma)
    memory = min(1.0, max(1e-4, cpu * ratio))
    duration = max(1.0, rng.exponential(config.mean_duration))
    return TaskRequest(
        task_id=task_id,
        cpu=cpu,
        memory=memory,
        submit_time=now,
        duration=duration,
    )


def synthesize_trace(config: Optional[TraceConfig] = None) -> List[TraceEvent]:
    """Generate a time-ordered SUBMIT/FINISH event stream."""
    config = config or TraceConfig()
    rng = SeededRNG(config.seed).derive("cluster-trace")
    events: List[TraceEvent] = []
    now = 0.0
    for task_id in range(config.tasks):
        now += rng.exponential(config.mean_interarrival)
        task = synthesize_task(task_id, now, config, rng)
        events.append(TraceEvent(now, EventKind.SUBMIT, task))
        events.append(
            TraceEvent(now + task.duration, EventKind.FINISH, task)
        )
    events.sort(key=lambda e: (e.time, e.kind is EventKind.SUBMIT,
                               e.task.task_id))
    return events


def downsample_trace(events: Sequence[TraceEvent], fraction: float,
                     seed: int = 0) -> List[TraceEvent]:
    """Keep a deterministic ``fraction`` of the trace's tasks.

    Thinning is by *task*, not by event: a kept task keeps both its
    SUBMIT and FINISH, so the down-sampled trace is still a valid
    allocate/release stream. Selection hashes ``(seed, task_id)``
    (sha256, like :meth:`~repro.sim.rng.SeededRNG.derive`), so the
    subset is identical across processes and runs regardless of hash
    randomization, and a larger fraction's subset always contains a
    smaller fraction's — the property scaling studies want when they
    sweep the ``--scale`` knob.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")
    if fraction == 1.0:
        return list(events)
    threshold = fraction * float(2 ** 64)

    def kept(task_id: int) -> bool:
        digest = hashlib.sha256(f"{seed}/{task_id}".encode()).digest()
        return int.from_bytes(digest[:8], "big") < threshold

    decisions = {}
    out = []
    for event in events:
        task_id = event.task.task_id
        decision = decisions.get(task_id)
        if decision is None:
            decision = decisions[task_id] = kept(task_id)
        if decision:
            out.append(event)
    return out


def trace_window(events: Sequence[TraceEvent], start: float,
                 end: float) -> List[TraceEvent]:
    """Events with ``start <= time < end`` (time order preserved).

    An empty window (``start >= end`` or no events inside) returns
    ``[]`` rather than raising — replay loops treat it as a quiet
    period.
    """
    return [event for event in events if start <= event.time < end]


def ratio_span_orders_of_magnitude(events: Iterator[TraceEvent]) -> float:
    """Log10 spread of memory/CPU ratios (sanity: should be ≈ 3)."""
    import math

    ratios = sorted(
        event.task.memory_cpu_ratio
        for event in events
        if event.kind is EventKind.SUBMIT
    )
    if not ratios:
        return 0.0
    low = ratios[int(0.005 * (len(ratios) - 1))]
    high = ratios[int(0.995 * (len(ratios) - 1))]
    return math.log10(high / low)
