"""Tests for the §VII packet-switched fabric alternative."""

import pytest

from repro.net import (
    Addressed,
    LinkConfig,
    PacketSwitch,
    PacketSwitchError,
    SerialLink,
)
from repro.sim import Simulator


class _Payload:
    def __init__(self, tag, wire_bytes=512):
        self.tag = tag
        self.wire_bytes = wire_bytes


def make_switch(sim, ports=4, **kwargs):
    switch = PacketSwitch(sim, ports=ports, **kwargs)
    egress = []
    for port in range(ports):
        link = SerialLink(sim, LinkConfig(), name=f"out{port}")
        switch.attach_egress(port, link)
        egress.append(link)
    return switch, egress


class TestPacketSwitch:
    def test_forwards_by_destination(self):
        sim = Simulator()
        switch, egress = make_switch(sim)
        switch.ingress_store(0).try_put(
            (Addressed(2, _Payload("x")), False)
        )
        sim.run()
        delivered = egress[2].rx.try_get()
        assert delivered[0].tag == "x"
        assert switch.frames_forwarded == 1

    def test_no_reconfiguration_needed_for_any_pairing(self):
        """The packet fabric's §VII selling point: any-to-any at once."""
        sim = Simulator()
        switch, egress = make_switch(sim)
        for source, destination in ((0, 1), (0, 2), (0, 3), (3, 0)):
            switch.ingress_store(source).try_put(
                (Addressed(destination, _Payload(f"{source}->{destination}")),
                 False)
            )
        sim.run()
        assert switch.frames_forwarded == 4
        assert egress[1].rx.try_get()[0].tag == "0->1"
        assert egress[0].rx.try_get()[0].tag == "3->0"

    def test_unroutable_destination_dropped(self):
        sim = Simulator()
        switch, _egress = make_switch(sim)
        switch.ingress_store(0).try_put((Addressed(99, _Payload("x")), False))
        switch.ingress_store(0).try_put(("not-addressed", False))
        sim.run()
        assert switch.frames_unroutable == 2

    def test_congestion_drops_on_queue_overflow(self):
        sim = Simulator()
        switch, _egress = make_switch(sim, egress_queue_frames=2)
        # Many ingress ports burst at one egress: the queue (2) overflows.
        for source in range(4):
            for _ in range(4):
                switch.ingress_store(source).try_put(
                    (Addressed(1, _Payload("burst", wire_bytes=4096)), False)
                )
        sim.run()
        assert switch.frames_dropped_congestion > 0
        assert (
            switch.frames_forwarded + switch.frames_dropped_congestion == 16
        )

    def test_corruption_propagates(self):
        sim = Simulator()
        switch, egress = make_switch(sim)
        switch.ingress_store(0).try_put((Addressed(1, _Payload("bad")), True))
        sim.run()
        _payload, corrupted = egress[1].rx.try_get()
        assert corrupted is True

    def test_shared_egress_serializes(self):
        """Two senders to one destination share the output fibre: the
        second frame finishes roughly one serialization time later."""
        sim = Simulator()
        switch, egress = make_switch(sim)
        big = 125_000  # 1 Mb ≈ 10.3 µs on a 100G link with coding
        switch.ingress_store(0).try_put(
            (Addressed(1, _Payload("a", wire_bytes=big)), False)
        )
        switch.ingress_store(2).try_put(
            (Addressed(1, _Payload("b", wire_bytes=big)), False)
        )
        sim.run()
        config = LinkConfig()
        expected_two = (
            switch.forwarding_latency_s
            + 2 * config.serialization_time(big)
            + config.flight_latency_s
        )
        assert sim.now == pytest.approx(expected_two, rel=0.05)

    def test_minimum_ports(self):
        with pytest.raises(PacketSwitchError):
            PacketSwitch(Simulator(), ports=1)

    def test_bad_port_lookup(self):
        sim = Simulator()
        switch, _egress = make_switch(sim)
        with pytest.raises(PacketSwitchError):
            switch.ingress_store(9)
