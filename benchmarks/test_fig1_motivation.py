"""Fig. 1 — datacentre utilization: fixed vs disaggregated.

Paper values (12 555 units, Google ClusterData):

====================  =====  =====
metric                fixed  disagg
====================  =====  =====
fragmentation CPU %   16.0   3.86
fragmentation MEM %   29.5   9.2
resources off CPU %    1.0   8.0
resources off MEM %    1.0   27.0
====================  =====  =====

This bench replays the synthetic trace at a 31× scale-down (400 units)
with the same demand-to-capacity operating point and asserts the
paper's *shape*: disaggregation cuts both fragmentation indices by ≈3–4×
and frees an order of magnitude more memory modules for power-off.
"""

from conftest import print_table, save_results, sweep_payload

from repro.cluster import run_fig1_experiment, scaled_trace_config

UNITS = 400


def compute_payload(units=UNITS):
    """Sweep target: utilization report for both datacentre models."""
    reports = run_fig1_experiment(scaled_trace_config(units=units),
                                  units=units)
    payload = {"units": units}
    for name, report in reports.items():
        payload[name] = {
            "cpu_fragmentation_pct": report.cpu_fragmentation_pct,
            "memory_fragmentation_pct": report.memory_fragmentation_pct,
            "compute_off_pct": report.compute_off_pct,
            "memory_off_pct": report.memory_off_pct,
        }
    return payload


def test_fig1_motivation(once):
    payload = once(sweep_payload, __file__, units=UNITS)
    fixed = payload["fixed"]
    disagg = payload["disaggregated"]

    rows = [
        (
            "Fragmentation CPU %",
            f"{fixed['cpu_fragmentation_pct']:.2f}",
            f"{disagg['cpu_fragmentation_pct']:.2f}",
            "16.0 / 3.86",
        ),
        (
            "Fragmentation MEM %",
            f"{fixed['memory_fragmentation_pct']:.2f}",
            f"{disagg['memory_fragmentation_pct']:.2f}",
            "29.5 / 9.2",
        ),
        (
            "Off (compute) %",
            f"{fixed['compute_off_pct']:.2f}",
            f"{disagg['compute_off_pct']:.2f}",
            "1.0 / 8.0",
        ),
        (
            "Off (memory) %",
            f"{fixed['memory_off_pct']:.2f}",
            f"{disagg['memory_off_pct']:.2f}",
            "1.0 / 27.0",
        ),
    ]
    print_table(
        "Fig. 1 — utilization, fixed vs disaggregated "
        f"({UNITS} units, scaled)",
        ["metric", "fixed", "disaggregated", "paper (fixed/disagg)"],
        rows,
    )
    save_results("fig1", payload)

    # Shape assertions (paper ratios: CPU 4.1x, MEM 3.2x improvements).
    assert disagg["cpu_fragmentation_pct"] < fixed["cpu_fragmentation_pct"] / 2
    assert (disagg["memory_fragmentation_pct"]
            < fixed["memory_fragmentation_pct"] / 2)
    # Severe memory stranding in the fixed model.
    assert fixed["memory_fragmentation_pct"] > 20.0
    assert disagg["memory_off_pct"] > fixed["memory_off_pct"] + 10.0
    assert disagg["memory_off_pct"] > 15.0  # large power-off opportunity
