"""Unified metrics registry: primitives, collectors, and the key
cross-layer invariant — every forced frame drop surfaced by net.faults
must correspond to one replay request on the LLC replay path.
"""

import json

import pytest

from repro.core import LlcEndpoint
from repro.net import DuplexChannel, FaultInjector, LinkConfig
from repro.obs import (
    MetricsRegistry,
    render_metrics_summary,
    summary_from_snapshot,
    write_metrics_json,
)
from repro.opencapi import MemTransaction
from repro.sim import Simulator


class TestRegistryPrimitives:
    def test_counter_increments_and_rejects_negative(self):
        registry = MetricsRegistry()
        counter = registry.counter("bus.loads")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("llc.replays", node="node0").inc(2)
        registry.counter("llc.replays", node="node1").inc(5)
        assert registry.value("llc.replays", node="node0") == 2
        assert registry.value("llc.replays", node="node1") == 5

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.gauge("link.utilization", link="ch0")
        second = registry.gauge("link.utilization", link="ch0")
        assert first is second

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("dram.reads")
        with pytest.raises(TypeError):
            registry.gauge("dram.reads")

    def test_gauge_set_and_adjust(self):
        gauge = MetricsRegistry().gauge("outstanding")
        gauge.set(10)
        gauge.adjust(-3)
        assert gauge.value == 7

    def test_histogram_sample_keys(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rtt", low=0.0, high=1.0, bins=4)
        for value in (0.1, 0.3, 0.3, 0.9):
            hist.observe(value)
        snap = registry.snapshot()
        assert snap["rtt.count"] == 4
        assert snap["rtt.mean"] == pytest.approx(0.4)
        # Cumulative buckets: everything below 0.5 is 3 samples.
        assert snap["rtt.bucket_le_0.5"] == 3
        assert snap["rtt.bucket_le_1"] == 4

    def test_collector_pull_model(self):
        registry = MetricsRegistry()
        source = {"served": 0}
        registry.add_collector(
            lambda reg: reg.gauge("endpoint.served").set(source["served"])
        )
        source["served"] = 7
        assert registry.snapshot()["endpoint.served"] == 7

    def test_snapshot_is_sorted_and_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)

    def test_write_metrics_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("bus.loads", node="node0").inc(5)
        path = tmp_path / "metrics.json"
        write_metrics_json(registry, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["bus.loads{node=node0}"] == 5


class TestHistogramQuantiles:
    def _hist(self, *values, low=0.0, high=1.0, bins=4):
        hist = MetricsRegistry().histogram(
            "q", low=low, high=high, bins=bins
        )
        for value in values:
            hist.observe(value)
        return hist

    def test_quantile_rejects_out_of_range_q(self):
        hist = self._hist(0.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)
        with pytest.raises(ValueError):
            hist.quantile(100.1)

    def test_empty_histogram_quantile_is_zero(self):
        hist = self._hist()
        for q in (0.0, 50.0, 99.9, 100.0):
            assert hist.quantile(q) == 0.0

    def test_single_sample_pins_every_quantile_to_its_bucket(self):
        """Boundary safety: one sample in [0.25, 0.5) keeps p50, p99 and
        p99.9 inside that bucket instead of extrapolating."""
        hist = self._hist(0.3)
        for q in (50.0, 99.0, 99.9):
            assert 0.25 <= hist.quantile(q) < 0.5
        assert hist.quantile(50.0) == pytest.approx(0.375)
        assert hist.quantile(99.9) == pytest.approx(0.49975)

    def test_interpolation_within_a_bucket(self):
        # 4 samples all in [0.0, 0.25): rank q walks linearly across it.
        hist = self._hist(0.1, 0.1, 0.1, 0.1)
        assert hist.quantile(50.0) == pytest.approx(0.125)
        assert hist.quantile(100.0) == pytest.approx(0.25)

    def test_p999_lands_in_the_tail_bucket(self):
        # 999 fast samples, 1 slow one: p99.9 reaches the slow bucket.
        hist = MetricsRegistry().histogram(
            "lat", low=0.0, high=1.0, bins=10
        )
        for _ in range(999):
            hist.observe(0.05)
        hist.observe(0.95)
        assert hist.quantile(50.0) < 0.1
        assert 0.9 <= hist.quantile(99.9) <= 1.0
        assert hist.quantile(99.9) > hist.quantile(99.0)

    def test_underflow_rank_returns_low_bound(self):
        hist = self._hist(-5.0, -5.0, 0.6, low=0.0, high=1.0)
        assert hist.quantile(50.0) == 0.0

    def test_overflow_rank_returns_high_bound(self):
        hist = self._hist(0.1, 9.0, 9.0)
        assert hist.quantile(99.9) == 1.0

    def test_quantiles_are_monotone_in_q(self):
        hist = self._hist(0.05, 0.2, 0.4, 0.6, 0.8, 0.95, bins=8)
        quantiles = [
            hist.quantile(q) for q in (1.0, 25.0, 50.0, 75.0, 99.0, 99.9)
        ]
        assert quantiles == sorted(quantiles)

    def test_snapshot_exports_percentile_keys(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rtt", low=0.0, high=1.0, bins=4)
        hist.observe(0.3)
        snap = registry.snapshot()
        assert snap["rtt.p50"] == pytest.approx(0.375)
        assert snap["rtt.p99"] == pytest.approx(0.4975)
        assert snap["rtt.p999"] == pytest.approx(0.49975)


class TestSummaryRendering:
    def test_snapshot_summary_groups_by_prefix(self):
        snapshot = {
            "bus.loads{node=node0}": 16,
            "bus.stores{node=node0}": 4,
            "llc.replays_requested{node=node0}": 0,
        }
        text = summary_from_snapshot(
            "end-of-run", snapshot, skip_zero=True
        ).render()
        assert "bus.loads{node=node0}" in text
        assert "16" in text
        assert "replays_requested" not in text  # zero rows skipped

    def test_render_metrics_summary_from_registry(self):
        registry = MetricsRegistry()
        registry.counter("dram.reads", node="node1").inc(9)
        text = render_metrics_summary(registry, "run")
        assert "dram.reads{node=node1}" in text
        assert "9" in text


def make_pair(faults_ab=None):
    """Bare LLC pair over one duplex channel, keeping the channel."""
    sim = Simulator()
    channel = DuplexChannel(sim, LinkConfig(), faults_ab=faults_ab)
    a = LlcEndpoint(sim, channel.endpoint_view("a"), name="a")
    b = LlcEndpoint(sim, channel.endpoint_view("b"), name="b")
    return sim, channel, a, b


def pump(sim, source, sink, count):
    def sender():
        for index in range(count):
            txn = MemTransaction.write(index * 128, bytes([index % 251]) * 128)
            yield source.submit(txn)

    received = []

    def receiver():
        for _ in range(count):
            received.append((yield sink.receive()))

    sim.process(sender(), name="sender")
    proc = sim.process(receiver(), name="receiver")
    sim.run(until=sim.now + 1.0)
    assert not proc.alive, "receiver did not get every transaction"
    return received


class TestFaultAccountingMatchesReplays:
    def test_drops_equal_replays_requested(self):
        """Acceptance: net.faults drop count == LLC replays triggered.

        Each forced drop is spaced out with clean traffic so the gap it
        opens is detected (and replayed) before the next one — otherwise
        consecutive drops would coalesce into a single replay request.
        """
        injector = FaultInjector()
        sim, channel, a, b = make_pair(faults_ab=injector)
        for _ in range(3):
            injector.force_drop_next(1)
            pump(sim, a, b, 5)

        registry = MetricsRegistry()
        channel.a_to_b.register_metrics(registry, direction="ab")
        a.register_metrics(registry, node="a")
        b.register_metrics(registry, node="b")
        registry.snapshot()
        wire = {"direction": "ab", "link": "channel.ab"}

        dropped = registry.value("net.faults.frames_dropped", **wire)
        assert dropped == 3
        assert (
            registry.value("llc.replays_requested", llc="b", node="b")
            == dropped
        )
        # Go-back-N: one request replays every frame from the gap on,
        # so the sender serves at least one frame per request.
        assert (
            registry.value("llc.replays_served", llc="a", node="a") >= dropped
        )
        assert registry.value("net.faults.forced_drops", **wire) == 3
        assert registry.value("net.faults.random_drops", **wire) == 0

    def test_corruptions_surface_and_trigger_replays(self):
        injector = FaultInjector()
        sim, channel, a, b = make_pair(faults_ab=injector)
        for _ in range(2):
            injector.force_corrupt_next(1)
            pump(sim, a, b, 5)

        registry = MetricsRegistry()
        channel.a_to_b.register_metrics(registry, direction="ab")
        b.register_metrics(registry, node="b")
        registry.snapshot()
        wire = {"direction": "ab", "link": "channel.ab"}

        corrupted = registry.value("net.faults.frames_corrupted", **wire)
        assert corrupted == 2
        assert (
            registry.value("llc.frames_corrupted", llc="b", node="b")
            == corrupted
        )
        assert (
            registry.value("llc.replays_requested", llc="b", node="b")
            >= corrupted
        )

    def test_fault_count_is_drop_plus_corrupt(self):
        injector = FaultInjector()
        sim, channel, a, b = make_pair(faults_ab=injector)
        injector.force_drop_next(1)
        pump(sim, a, b, 5)
        injector.force_corrupt_next(1)
        pump(sim, a, b, 5)

        breakdown = injector.breakdown()
        assert breakdown["frames_dropped"] == 1
        assert breakdown["frames_corrupted"] == 1
        assert breakdown["fault_count"] == 2
        assert breakdown["forced_drops"] == 1
        assert breakdown["forced_corruptions"] == 1
        assert breakdown["frames_seen"] > 2

    def test_clean_wire_reports_zero_faults(self):
        injector = FaultInjector()
        sim, channel, a, b = make_pair(faults_ab=injector)
        pump(sim, a, b, 10)
        registry = MetricsRegistry()
        channel.a_to_b.register_metrics(registry, direction="ab")
        registry.snapshot()
        wire = {"direction": "ab", "link": "channel.ab"}
        assert registry.value("net.faults.fault_count", **wire) == 0
        assert registry.value("net.faults.frames_seen", **wire) > 0


class TestEndToEndRegistration:
    def test_testbed_registers_whole_stack(self):
        from repro.mem import MIB
        from repro.testbed import Testbed

        testbed = Testbed()
        attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
        window = testbed.remote_window_range(attachment)
        payload = bytes(range(128))
        testbed.node0.run_store(window.start, payload)
        assert testbed.node0.run_load(window.start) == payload

        registry = MetricsRegistry()
        testbed.register_observability(registry)
        snap = registry.snapshot()

        assert registry.value("bus.loads", bus="node0.bus", node="node0") >= 1
        assert registry.value("bus.stores", bus="node0.bus", node="node0") >= 1
        assert (
            registry.value(
                "rmmu.translations", node="node0", rmmu="node0.tf.rmmu"
            )
            >= 2
        )
        assert (
            registry.value("dram.writes", device="node1.dram", node="node1")
            >= 1
        )
        assert (
            registry.value(
                "endpoint.requests",
                endpoint="node0.tf.compute",
                node="node0",
            )
            >= 2
        )
        assert (
            registry.value(
                "endpoint.served", endpoint="node1.tf.memory", node="node1"
            )
            >= 2
        )
        # Both directions of channel 0 carried frames.
        sent_keys = [
            key
            for key in snap
            if key.startswith("link.frames_sent") and snap[key] > 0
        ]
        assert len(sent_keys) >= 2

    def test_loads_stores_mix_per_node(self):
        from repro.mem import MIB
        from repro.testbed import Testbed

        testbed = Testbed()
        attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
        window = testbed.remote_window_range(attachment)
        testbed.node0.run_store(window.start, bytes(128))
        for _ in range(4):
            testbed.node0.run_load(window.start)

        registry = MetricsRegistry()
        testbed.register_observability(registry)
        registry.snapshot()
        assert registry.value("bus.loads", bus="node0.bus", node="node0") == 4
        assert registry.value("bus.stores", bus="node0.bus", node="node0") == 1
