"""Packet-switched fabric — the other §VII network option.

"With a packet-based network … a node could access all other nodes in
the rack with no need for reconfiguration, although packet networks
come with congestion issues as network links are shared between many
connections."

The model is a store-and-forward output-queued switch: every frame is
received completely, looks up its egress by destination port, queues at
that egress, and is re-serialized onto the output fibre. No circuits,
no reconfiguration — but congestion: frames from many ingress ports
contend for the same egress queue, and a bounded queue drops on
overflow (the LLC replay protocol turns drops into retransmissions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from ..errors import ReproError
from ..sim.engine import Simulator
from ..sim.resources import Store
from ..sim.stats import RunningStats
from .link import SerialLink

__all__ = ["PacketSwitch", "PacketSwitchError", "Addressed"]


class PacketSwitchError(ReproError, RuntimeError):
    """Invalid port wiring or addressing."""

    code = "switch/packet-session"


@dataclass
class Addressed:
    """Wrapper tagging a payload with its destination port."""

    destination_port: int
    payload: Any

    @property
    def wire_bytes(self) -> int:
        size = getattr(self.payload, "wire_bytes", None)
        if size is not None:
            return size
        try:
            # Raw buffer payloads (bytes / bytearray / memoryview)
            # serialize at their actual length, so zero-copy slices
            # keep honest wire footprints.
            return memoryview(self.payload).nbytes
        except TypeError:
            return 64


class PacketSwitch:
    """Output-queued, store-and-forward packet switch.

    Ingress links deliver :class:`Addressed` frames into
    ``ingress_store(port)``; the switch forwards the inner payload onto
    the destination port's egress link after the forwarding latency.
    Egress queues are bounded — overflow drops the frame (and counts
    it), modelling congestion loss that upper layers must absorb.
    """

    def __init__(
        self,
        sim: Simulator,
        ports: int,
        forwarding_latency_s: float = 300e-9,
        egress_queue_frames: int = 64,
        name: str = "psw",
    ):
        if ports < 2:
            raise PacketSwitchError(f"need >= 2 ports, got {ports}")
        self.sim = sim
        self.name = name
        self.forwarding_latency_s = forwarding_latency_s
        self._ingress = [
            Store(sim, name=f"{name}.p{i}.in") for i in range(ports)
        ]
        self._egress_queues = [
            Store(sim, capacity=egress_queue_frames, name=f"{name}.p{i}.q")
            for i in range(ports)
        ]
        self._egress_links: List[Optional[SerialLink]] = [None] * ports
        self.frames_forwarded = 0
        self.frames_dropped_congestion = 0
        self.frames_unroutable = 0
        self.queue_depth = RunningStats(f"{name}.queue_depth")
        for port in range(ports):
            sim.process(self._ingress_worker(port), name=f"{name}.in{port}")
            sim.process(self._egress_worker(port), name=f"{name}.out{port}")

    @property
    def port_count(self) -> int:
        return len(self._ingress)

    # -- wiring --------------------------------------------------------------------
    def ingress_store(self, port: int) -> Store:
        return self._ingress[self._check(port)]

    def attach_egress(self, port: int, link: SerialLink) -> None:
        self._egress_links[self._check(port)] = link

    # -- data plane -----------------------------------------------------------------
    def _ingress_worker(self, port: int) -> Generator:
        while True:
            frame, corrupted = yield self._ingress[port].get()
            if not isinstance(frame, Addressed):
                self.frames_unroutable += 1
                continue
            destination = frame.destination_port
            if not 0 <= destination < self.port_count:
                self.frames_unroutable += 1
                continue
            yield self.forwarding_latency_s
            queue = self._egress_queues[destination]
            self.queue_depth.add(len(queue))
            if not queue.try_put((frame, corrupted)):
                self.frames_dropped_congestion += 1

    def _egress_worker(self, port: int) -> Generator:
        while True:
            frame, corrupted = yield self._egress_queues[port].get()
            link = self._egress_links[port]
            if link is None:
                self.frames_unroutable += 1
                continue
            self.frames_forwarded += 1
            yield link.send(
                frame.payload, frame.wire_bytes, pre_corrupted=corrupted
            )

    def _check(self, port: int) -> int:
        if not 0 <= port < self.port_count:
            raise PacketSwitchError(
                f"{self.name}: no port {port} (have {self.port_count})"
            )
        return port
