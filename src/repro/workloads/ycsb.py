"""Yahoo! Cloud Serving Benchmark workload generator — paper §VI-D.

Implements the six core workloads (A–F) with their canonical operation
mixes and request distributions, matching the YCSB core-workloads
definitions the paper cites. The generator is deterministic per seed
and emits :class:`YcsbOperation` records that application drivers (the
VoltDB model, or any key-value store) consume.

Paper grouping (§VI-D): "Read intensive: workloads with > 95% read
transactions … B, C, D and E. Mixed: … 50% reads and 50% other
transactions … A and F."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..sim.rng import SeededRNG, ZipfGenerator

__all__ = [
    "YcsbOperationType",
    "YcsbOperation",
    "YcsbWorkload",
    "YCSB_WORKLOADS",
    "YcsbGenerator",
]


class YcsbOperationType(enum.Enum):
    READ = "read"
    UPDATE = "update"
    INSERT = "insert"
    SCAN = "scan"
    READ_MODIFY_WRITE = "rmw"


@dataclass(frozen=True)
class YcsbOperation:
    """One generated request."""

    op_type: YcsbOperationType
    key: int
    scan_length: int = 0


@dataclass(frozen=True)
class YcsbWorkload:
    """One core workload definition."""

    name: str
    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    read_modify_write: float = 0.0
    distribution: str = "zipfian"  # zipfian | uniform | latest
    max_scan_length: int = 100

    def __post_init__(self):
        total = (
            self.read
            + self.update
            + self.insert
            + self.scan
            + self.read_modify_write
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"workload {self.name}: mix sums to {total}")

    @property
    def read_fraction(self) -> float:
        """Fraction of operations that only read (READ + SCAN)."""
        return self.read + self.scan

    @property
    def is_read_intensive(self) -> bool:
        """Paper grouping: ≥ 95% read transactions (B, C, D, E)."""
        return self.read_fraction >= 0.95


#: The canonical core workloads (YCSB wiki, cited as [54]).
YCSB_WORKLOADS: Dict[str, YcsbWorkload] = {
    "A": YcsbWorkload("A", read=0.5, update=0.5, distribution="zipfian"),
    "B": YcsbWorkload("B", read=0.95, update=0.05, distribution="zipfian"),
    "C": YcsbWorkload("C", read=1.0, distribution="zipfian"),
    "D": YcsbWorkload("D", read=0.95, insert=0.05, distribution="latest"),
    "E": YcsbWorkload("E", scan=0.95, insert=0.05, distribution="zipfian"),
    "F": YcsbWorkload(
        "F", read=0.5, read_modify_write=0.5, distribution="zipfian"
    ),
}


class YcsbGenerator:
    """Deterministic operation stream for one workload."""

    def __init__(
        self,
        workload: YcsbWorkload,
        record_count: int = 100_000,
        seed: int = 7,
        zipf_exponent: float = 0.99,
    ):
        self.workload = workload
        self.record_count = record_count
        self._rng = SeededRNG(seed).derive(f"ycsb/{workload.name}")
        self._zipf = ZipfGenerator(record_count, zipf_exponent, self._rng)
        self._inserted = record_count

    # -- key choosers ---------------------------------------------------------------
    def _choose_key(self) -> int:
        distribution = self.workload.distribution
        if distribution == "uniform":
            return self._rng.randint(0, self._inserted - 1)
        if distribution == "latest":
            # Skewed toward the most recently inserted records.
            rank = self._zipf.sample()
            return max(0, self._inserted - 1 - rank)
        return self._zipf.sample()

    def _choose_type(self) -> YcsbOperationType:
        w = self.workload
        u = self._rng.random()
        thresholds = [
            (w.read, YcsbOperationType.READ),
            (w.update, YcsbOperationType.UPDATE),
            (w.insert, YcsbOperationType.INSERT),
            (w.scan, YcsbOperationType.SCAN),
            (w.read_modify_write, YcsbOperationType.READ_MODIFY_WRITE),
        ]
        cumulative = 0.0
        for weight, op_type in thresholds:
            cumulative += weight
            if u < cumulative:
                return op_type
        return YcsbOperationType.READ  # float round-off fallback

    # -- stream ------------------------------------------------------------------------
    def operations(self, count: int) -> Iterator[YcsbOperation]:
        for _ in range(count):
            op_type = self._choose_type()
            if op_type is YcsbOperationType.INSERT:
                key = self._inserted
                self._inserted += 1
                yield YcsbOperation(op_type, key)
            elif op_type is YcsbOperationType.SCAN:
                yield YcsbOperation(
                    op_type,
                    self._choose_key(),
                    scan_length=self._rng.randint(
                        1, self.workload.max_scan_length
                    ),
                )
            else:
                yield YcsbOperation(op_type, self._choose_key())

    def sample_mix(self, count: int = 10_000) -> Dict[YcsbOperationType, float]:
        """Empirical mix over ``count`` generated operations (testing)."""
        histogram: Dict[YcsbOperationType, int] = {}
        for operation in self.operations(count):
            histogram[operation.op_type] = histogram.get(operation.op_type, 0) + 1
        return {k: v / count for k, v in histogram.items()}
