"""Link-Layer Control (LLC) protocol — paper §IV-A4.

Implements the two reliability features of the ThymesisFlow network
stack exactly as specified:

* **Credit-based backpressure** — the Tx side holds one credit per empty
  slot of the peer's Rx ingress queue, consuming a credit per
  transaction transmitted and stalling at zero. Credits are returned by
  piggy-backing grants "on the transaction headers of requests and
  responses"; if the reverse direction is idle, a small control frame
  carries them (hardware would eventually do the same or starve).
* **Frame replay** — transactions are packed into fixed-size frames of
  ``flits_per_frame`` 32 B flits; "incomplete frames are padded with
  single-flit nop transaction headers for immediate transmission".
  Frames carry monotonically increasing identifiers and a CRC. The Rx
  side accepts only the next in-order, CRC-clean frame; anything else
  triggers an in-band single-flit **replay request**, and the Tx side
  replays the requested sequence in order from its retention buffer.
  Retention is pruned by cumulative acknowledgements piggy-backed on
  reverse-direction frames; a Tx-side timer recovers tail loss.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from .. import accel
from ..net.crc import crc32
from ..net.link import ChannelEndpointView
from ..obs import trace as _trace
from ..opencapi.ports import FPGA_STACK_CROSSING_S
from ..opencapi.transactions import (
    FLIT_BYTES,
    MemTransaction,
    TLCommand,
    split_burst,
    transaction_flits,
)
from ..sim.engine import Simulator
from ..sim.resources import CreditPool, Store

__all__ = ["LlcConfig", "Frame", "LlcEndpoint", "LlcError"]

#: Fixed per-frame header: frame id, CRC, cumulative ack, credit grant.
FRAME_HEADER_BYTES = 16


class LlcError(RuntimeError):
    """Protocol violation detected by the LLC (model bug, not link loss)."""


@dataclass
class LlcConfig:
    """Tunable parameters of one LLC instance (both directions)."""

    flits_per_frame: int = 16
    rx_queue_slots: int = 256
    replay_timeout_s: float = 5e-6
    control_frame_delay_s: float = 500e-9
    pipeline_latency_s: float = FPGA_STACK_CROSSING_S
    max_retention_frames: int = 4096
    #: Frame-fill window: transactions arriving within a couple of
    #: 401 MHz cycles of each other share a frame (the hardware packs
    #: whatever is present in the pipeline stage when the frame closes).
    packing_delay_s: float = 5e-9

    def __post_init__(self):
        if self.flits_per_frame < 5:
            # A 128 B write needs 5 flits; frames must fit one transaction.
            raise ValueError(
                f"flits_per_frame must be >= 5: {self.flits_per_frame}"
            )
        if self.rx_queue_slots < 1:
            raise ValueError(
                f"rx_queue_slots must be >= 1: {self.rx_queue_slots}"
            )

    @property
    def frame_wire_bytes(self) -> int:
        return self.flits_per_frame * FLIT_BYTES + FRAME_HEADER_BYTES


_frame_seq = itertools.count()


@dataclass
class Frame:
    """One LLC frame on the wire."""

    frame_id: Optional[int]  #: None for out-of-band control frames
    transactions: List[MemTransaction] = field(default_factory=list)
    nop_padding: int = 0
    crc: int = 0
    ack_id: Optional[int] = None
    credit_grant: int = 0
    replay_from: Optional[int] = None  #: set on replay-request control frames
    is_replay: bool = False
    wire_bytes: int = 0
    sent_at: float = 0.0
    uid: int = field(default_factory=lambda: next(_frame_seq))

    @property
    def is_control(self) -> bool:
        return self.frame_id is None

    @property
    def flit_count(self) -> int:
        return sum(transaction_flits(t) for t in self.transactions) + self.nop_padding

    def digest(self) -> bytes:
        # A burst segment covers the same per-line headers the unbatched
        # formulation would put on the wire; the CRC protects each of
        # them. The per-line signature math runs on the active accel
        # backend (vectorized for large bursts under numpy).
        identity = self.frame_id if self.frame_id is not None else -1
        return accel.ops.frame_digest(
            identity,
            [
                (txn.txn_id, txn.command.value, txn.burst)
                for txn in self.transactions
            ],
        )

    def seal(self) -> None:
        self.crc = crc32(self.digest())

    def crc_ok(self) -> bool:
        return self.crc == crc32(self.digest())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "ctl" if self.is_control else f"#{self.frame_id}"
        return f"Frame({kind}, txns={len(self.transactions)})"


class LlcEndpoint:
    """One side of an LLC-protected network channel.

    Datapath interface:

    * :meth:`submit` — waitable enqueue of a transaction for the peer
      (consumes a credit; stalls under backpressure).
    * :meth:`receive` — waitable dequeue of the next transaction from
      the ingress queue (frees a slot, i.e. grants a credit back).
    """

    def __init__(
        self,
        sim: Simulator,
        channel: ChannelEndpointView,
        config: Optional[LlcConfig] = None,
        name: str = "llc",
    ):
        self.sim = sim
        self.channel = channel
        self.config = config or LlcConfig()
        self.name = name

        # Tx state ---------------------------------------------------------------
        self._tx_queue = Store(sim, name=f"{name}.txq")
        #: Remainder of a burst transaction split across frames; it sits
        #: logically at the head of the tx queue (its lines were queued
        #: before anything submitted later).
        self._pending_bulk: Optional[MemTransaction] = None
        self._credits = CreditPool(
            sim, self.config.rx_queue_slots, name=f"{name}.credits"
        )
        self._next_frame_id = 0
        self._retention: Dict[int, Frame] = {}
        self._retention_timer_armed = False

        # Rx state ---------------------------------------------------------------
        self._expected_id = 0
        self._replay_requested_for = -1
        self._ingress = Store(
            sim, capacity=self.config.rx_queue_slots, name=f"{name}.ingress"
        )
        self._pending_grants = 0
        self._control_flush_armed = False
        self._last_tx_time = -1.0

        # Counters -----------------------------------------------------------------
        self.frames_built = 0
        self.control_frames = 0
        self.replays_requested = 0
        self.replays_served = 0
        self.frames_out_of_order = 0
        self.frames_corrupted = 0
        self.frames_duplicate = 0
        self.nops_padded = 0
        self.txns_sent = 0
        self.txns_received = 0
        self.timeout_recoveries = 0

        sim.process(self._tx_pump(), name=f"{name}.tx")
        sim.process(self._rx_pump(), name=f"{name}.rx")

    # ------------------------------------------------------------------ datapath
    def submit(self, txn: MemTransaction):
        """Waitable submit; fires once the transaction is queued for Tx."""
        return self.sim.process(self._submit(txn), name=f"{self.name}.submit")

    def _submit(self, txn: MemTransaction) -> Generator:
        if _trace.ENABLED:
            _trace.txn_mark(
                self.sim.now, txn.base_txn_id, "llc.credit_wait", self.name
            )
        yield self._credits.consume(txn.burst)
        if _trace.ENABLED:
            _trace.txn_mark(
                self.sim.now, txn.base_txn_id, "llc.submit", self.name
            )
        yield self._tx_queue.put(txn)

    def try_submit(self, txn: MemTransaction) -> bool:
        """Non-blocking submit; False when out of credits."""
        if not self._credits.try_consume(txn.burst):
            return False
        if not self._tx_queue.try_put(txn):
            self._credits.grant(txn.burst)
            return False
        return True

    def receive(self):
        """Waitable receive of the next ingress transaction."""
        return self.sim.process(self._receive(), name=f"{self.name}.recv")

    def _receive(self) -> Generator:
        txn = yield self._ingress.get()
        # A burst segment occupied one ingress slot per cacheline worth
        # of credit the peer consumed; free them all.
        self._pending_grants += txn.burst
        self._arm_control_flush()
        return txn

    @property
    def credits_available(self) -> int:
        return self._credits.credits

    @property
    def credit_stalls(self) -> int:
        """Times a submit had to wait for the peer to free a slot."""
        return self._credits.stall_count

    @property
    def retention_depth(self) -> int:
        return len(self._retention)

    def register_metrics(self, registry, **labels) -> None:
        """Pull collector: frame/replay/credit counters for this side."""

        def collect(reg):
            base = dict(llc=self.name, **labels)
            gauge = lambda metric, value: reg.gauge(metric, **base).set(value)
            gauge("llc.frames_built", self.frames_built)
            gauge("llc.control_frames", self.control_frames)
            gauge("llc.replays_requested", self.replays_requested)
            gauge("llc.replays_served", self.replays_served)
            gauge("llc.frames_out_of_order", self.frames_out_of_order)
            gauge("llc.frames_corrupted", self.frames_corrupted)
            gauge("llc.frames_duplicate", self.frames_duplicate)
            gauge("llc.nops_padded", self.nops_padded)
            gauge("llc.txns_sent", self.txns_sent)
            gauge("llc.txns_received", self.txns_received)
            gauge("llc.timeout_recoveries", self.timeout_recoveries)
            gauge("llc.credit_stalls", self.credit_stalls)
            gauge("llc.credits_available", self._credits.credits)
            gauge("llc.retention_depth", len(self._retention))

        registry.add_collector(collect)

    def reset_link(self) -> None:
        """Link bring-up: resynchronize frame identifiers (§IV-A4).

        "During link bring-up, the ThymesisFlow LLC Tx side agrees on a
        starting frame identifier with the Rx side." Called when a
        channel is (re)pointed at a peer — e.g. a rack-scale circuit
        switch establishing a new light path. The link must be idle:
        retained frames belong to the previous peer and are dropped,
        frame ids restart from zero, and the full credit budget is
        restored (the new peer's ingress queue is empty).
        """
        self._retention.clear()
        self._next_frame_id = 0
        self._expected_id = 0
        self._replay_requested_for = -1
        self._pending_grants = 0
        self._pending_bulk = None
        while self._tx_queue.try_get() is not None:
            pass
        self._credits.reset(self.config.rx_queue_slots)

    # ------------------------------------------------------------------ tx side
    def _tx_pump(self) -> Generator:
        while True:
            if self._pending_bulk is not None:
                # Remaining lines of a split burst are logically at the
                # head of the queue; in the per-line formulation the
                # blocking get() would fire immediately here anyway.
                first, self._pending_bulk = self._pending_bulk, None
            else:
                first = yield self._tx_queue.get()
            if self.config.packing_delay_s > 0:
                # Let same-instant submitters land in the queue so the
                # frame leaves full instead of 1-transaction-per-frame.
                yield self.config.packing_delay_s
            capacity = self.config.flits_per_frame
            transactions: List[MemTransaction] = []
            flits = 0
            leftover = self._pack(transactions, first, capacity, flits)
            flits = sum(transaction_flits(t) for t in transactions)
            if leftover is None:
                # Greedily fill the frame with whatever is already
                # queued — but never wait for more ("immediate
                # transmission").
                while True:
                    candidate = self._tx_queue.try_get()
                    if candidate is None:
                        break
                    per_line = transaction_flits(candidate) // candidate.burst
                    if flits + per_line > capacity:
                        # Not even one cacheline fits: defer the whole
                        # candidate, exactly like the per-line case.
                        leftover = candidate
                        break
                    leftover = self._pack(
                        transactions, candidate, capacity, flits
                    )
                    flits = sum(transaction_flits(t) for t in transactions)
                    if leftover is not None:
                        break
            frame = self._build_frame(transactions, flits)
            self._transmit(frame)
            if leftover is not None:
                # The stash quirk, per cacheline: the first deferred
                # line leaves in its own immediate frame; further lines
                # of a split burst stay pending ahead of the queue.
                if leftover.burst == 1:
                    head, rest = leftover, None
                else:
                    head = split_burst(leftover, 0, 1)
                    rest = split_burst(leftover, 1, leftover.burst - 1)
                frame = self._build_frame([head], transaction_flits(head))
                self._transmit(frame)
                self._pending_bulk = rest

    def _pack(
        self,
        transactions: List[MemTransaction],
        txn: MemTransaction,
        capacity: int,
        flits: int,
    ) -> Optional[MemTransaction]:
        """Pack as many whole cachelines of ``txn`` as fit.

        Returns the unpacked remainder (a split burst) or None when the
        transaction fit entirely. At least one line always fits: frames
        hold >= 5 flits and a cacheline is at most 5.
        """
        if txn.burst == 1:
            transactions.append(txn)
            return None
        per_line = transaction_flits(txn) // txn.burst
        room = (capacity - flits) // per_line
        take = min(txn.burst, room)
        if take == txn.burst:
            transactions.append(txn)
            return None
        transactions.append(split_burst(txn, 0, take))
        return split_burst(txn, take, txn.burst - take)

    def _build_frame(
        self, transactions: List[MemTransaction], flits: int
    ) -> Frame:
        padding = self.config.flits_per_frame - flits
        self.nops_padded += padding
        frame = Frame(
            frame_id=self._next_frame_id,
            transactions=transactions,
            nop_padding=padding,
            wire_bytes=self.config.frame_wire_bytes,
        )
        self._next_frame_id += 1
        self.frames_built += 1
        self.txns_sent += sum(t.burst for t in transactions)
        if _trace.ENABLED:
            now = self.sim.now
            for txn in transactions:
                if txn.command is not TLCommand.NOP:
                    _trace.txn_mark(
                        now, txn.base_txn_id, "llc.frame", self.name
                    )
        return frame

    def _transmit(self, frame: Frame) -> None:
        """Stamp piggybacks, seal, retain and launch one frame."""
        if not frame.is_control:
            self._retention[frame.frame_id] = frame
            if len(self._retention) > self.config.max_retention_frames:
                raise LlcError(
                    f"{self.name}: retention overflow "
                    f"({len(self._retention)} frames unacked)"
                )
            self._arm_retention_timer()
        frame.ack_id = self._expected_id - 1 if self._expected_id else None
        frame.credit_grant = self._pending_grants
        self._pending_grants = 0
        frame.seal()
        frame.sent_at = self.sim.now
        self._last_tx_time = self.sim.now
        # The FPGA pipeline adds latency without limiting throughput:
        # launch after the crossing delay rather than stalling the pump.
        self.sim.schedule(
            self.config.pipeline_latency_s,
            self._launch,
            frame,
        )

    def _launch(self, frame: Frame) -> None:
        if not self.channel.tx_link.try_send(frame, frame.wire_bytes):
            raise LlcError(f"{self.name}: tx link queue rejected frame")

    def _retransmit_from(self, from_id: int) -> None:
        """Serve a replay request: resend retained frames in order."""
        for frame_id in sorted(self._retention):
            if frame_id < from_id:
                continue
            original = self._retention[frame_id]
            copy = Frame(
                frame_id=original.frame_id,
                transactions=original.transactions,
                nop_padding=original.nop_padding,
                wire_bytes=original.wire_bytes,
                is_replay=True,
            )
            copy.ack_id = self._expected_id - 1 if self._expected_id else None
            copy.credit_grant = self._pending_grants
            self._pending_grants = 0
            copy.seal()
            copy.sent_at = self.sim.now
            self._retention[frame_id] = copy  # refresh retention timestamp
            self.replays_served += 1
            self.sim.schedule(
                self.config.pipeline_latency_s, self._launch, copy
            )

    # -- retention timeout (tail-loss recovery) -------------------------------------
    def _arm_retention_timer(self) -> None:
        if self._retention_timer_armed:
            return
        self._retention_timer_armed = True
        self.sim.schedule(
            self.config.replay_timeout_s, self._retention_timer_fired
        )

    def _retention_timer_fired(self) -> None:
        self._retention_timer_armed = False
        if not self._retention:
            return
        oldest_id = min(self._retention)
        age = self.sim.now - self._retention[oldest_id].sent_at
        # The epsilon absorbs float round-off: an age within one part in
        # 1e9 of the timeout counts as expired, and the re-arm delay has
        # a floor, or the timer could re-fire at the same simulated
        # instant forever.
        if age >= self.config.replay_timeout_s * (1.0 - 1e-9):
            # Still unacknowledged a full timeout after (re)transmission:
            # the frame or every replay request for it was lost.
            self.timeout_recoveries += 1
            self._retransmit_from(oldest_id)
            self._retention_timer_armed = True
            self.sim.schedule(
                self.config.replay_timeout_s, self._retention_timer_fired
            )
        else:
            self._retention_timer_armed = True
            remaining = max(self.config.replay_timeout_s - age, 1e-9)
            self.sim.schedule(remaining, self._retention_timer_fired)

    # ------------------------------------------------------------------ rx side
    def _rx_pump(self) -> Generator:
        while True:
            frame, corrupted = yield self.channel.rx.get()
            self.sim.schedule(
                self.config.pipeline_latency_s,
                self._process_frame,
                frame,
                corrupted,
            )

    def _process_frame(self, frame: Frame, corrupted: bool) -> None:
        if corrupted or not frame.crc_ok():
            self.frames_corrupted += 1
            if _trace.ENABLED:
                _trace.instant(
                    "llc.frame_corrupted",
                    self.sim.now,
                    self.name,
                    frame_id=frame.frame_id,
                )
            if not frame.is_control:
                self._request_replay()
            return
        # Piggybacked state is valid on any CRC-clean frame.
        self._apply_piggyback(frame)
        if frame.is_control:
            if frame.replay_from is not None:
                self._retransmit_from(frame.replay_from)
            return
        if frame.frame_id == self._expected_id:
            self._accept(frame)
        elif frame.frame_id > self._expected_id:
            self.frames_out_of_order += 1
            self._request_replay()
        else:
            self.frames_duplicate += 1
            # Re-ack duplicates so the peer can prune retention.
            self._arm_control_flush(force=True)

    def _accept(self, frame: Frame) -> None:
        self._expected_id += 1
        self._replay_requested_for = -1  # progress: allow a new request
        for txn in frame.transactions:
            if txn.command == TLCommand.NOP:
                continue
            if not self._ingress.try_put(txn):
                raise LlcError(
                    f"{self.name}: ingress overflow — peer violated credits"
                )
            self.txns_received += txn.burst
            if _trace.ENABLED:
                _trace.txn_mark(
                    self.sim.now, txn.base_txn_id, "llc.deliver", self.name
                )
        # Deliver an ack opportunistically with the next outbound frame;
        # if the tx side stays idle the control flush will carry it.
        self._arm_control_flush()

    def _apply_piggyback(self, frame: Frame) -> None:
        if frame.credit_grant:
            self._credits.grant(frame.credit_grant)
        if frame.ack_id is not None:
            for frame_id in [f for f in self._retention if f <= frame.ack_id]:
                del self._retention[frame_id]

    def _request_replay(self) -> None:
        # One outstanding request per gap: further out-of-order arrivals
        # for the same expected id would only multiply replay traffic
        # (the Tx retention timer covers a lost request).
        if self._replay_requested_for == self._expected_id:
            return
        self._replay_requested_for = self._expected_id
        self.replays_requested += 1
        if _trace.ENABLED:
            _trace.instant(
                "llc.replay_request",
                self.sim.now,
                self.name,
                expected=self._expected_id,
            )
        self._send_control(replay_from=self._expected_id)

    # -- control frames -----------------------------------------------------------------
    def _arm_control_flush(self, force: bool = False) -> None:
        if self._control_flush_armed:
            return
        self._control_flush_armed = True
        delay = 0.0 if force else self.config.control_frame_delay_s
        self.sim.schedule(delay, self._control_flush_fired)

    def _control_flush_fired(self) -> None:
        self._control_flush_armed = False
        # If regular traffic flowed meanwhile, it carried the piggyback.
        recently_sent = (
            self._last_tx_time >= 0
            and (self.sim.now - self._last_tx_time)
            < self.config.control_frame_delay_s
        )
        need_ack = self._expected_id > 0
        if (self._pending_grants or need_ack) and not recently_sent:
            self._send_control()

    def _send_control(self, replay_from: Optional[int] = None) -> None:
        """Single-flit in-band control frame (replay request / credits)."""
        frame = Frame(
            frame_id=None,
            nop_padding=1,
            replay_from=replay_from,
            wire_bytes=FLIT_BYTES + FRAME_HEADER_BYTES,
        )
        frame.ack_id = self._expected_id - 1 if self._expected_id else None
        frame.credit_grant = self._pending_grants
        self._pending_grants = 0
        frame.seal()
        self.control_frames += 1
        self._last_tx_time = self.sim.now
        self.sim.schedule(self.config.pipeline_latency_s, self._launch, frame)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LlcEndpoint({self.name!r}, sent={self.txns_sent}, "
            f"recv={self.txns_received}, credits={self._credits.credits})"
        )
