"""Rack-scale topology: N nodes behind one circuit switch — paper §VII.

"With the currently available technologies, only rack-scale
disaggregation seems a feasible solution (i.e. at most one switching
layer) … At the scale of one or a few racks, a circuit switched optical
network would be attractive."

This testbed realizes that projection: every node's two network
channels terminate on a circuit switch; the control plane plans paths
*through* the switch and programs the circuits (via
:class:`~repro.control.switching.SwitchDriver`) as part of each attach.
Remote latency gains one switch crossing relative to the back-to-back
prototype.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..control.orchestrator import Attachment, ControlPlane
from ..control.security import Role
from ..control.switching import SwitchDriver
from ..core.llc import LlcConfig
from ..net.link import ChannelEndpointView, LinkConfig, SerialLink
from ..net.switch import CircuitSwitch
from ..sim.engine import Simulator
from .base import TestbedBase
from .node import Ac922Node, NodeSpec

__all__ = ["RackTestbed"]


class RackTestbed(TestbedBase):
    """N FPGA-equipped nodes, one optical circuit switch, one plane."""

    SWITCH_NAME = "sw0"

    def __init__(
        self,
        nodes: int = 4,
        channels_per_node: int = 2,
        spec: Optional[NodeSpec] = None,
        llc_config: Optional[LlcConfig] = None,
        link_config: Optional[LinkConfig] = None,
        switch_crossing_s: float = 100e-9,
    ):
        if nodes < 2:
            raise ValueError(f"need >= 2 nodes, got {nodes}")
        self.sim = Simulator()
        self.spec = spec or NodeSpec()
        link_config = link_config or LinkConfig()
        self.channels_per_node = channels_per_node

        self.switch = CircuitSwitch(
            self.sim,
            ports=nodes * channels_per_node,
            crossing_latency_s=switch_crossing_s,
            name=self.SWITCH_NAME,
        )
        self.nodes: List[Ac922Node] = []
        self._node_links: Dict[str, List[SerialLink]] = {}
        self.plane = ControlPlane()
        # Control events share the datapath's sim-time timeline.
        self.plane.clock = lambda: self.sim.now
        driver = SwitchDriver(
            self.SWITCH_NAME,
            self.switch,
            on_circuit_up=self._sync_circuit_llcs,
            on_circuit_down=self._sync_circuit_llcs,
        )

        for index in range(nodes):
            node = Ac922Node(
                self.sim, f"node{index}", self.spec, llc_config
            )
            self.nodes.append(node)
            self._node_links[node.hostname] = []
            for channel in range(channels_per_node):
                port = index * channels_per_node + channel
                # Uplink terminates directly on the switch port ingress;
                # the downlink is the switch port's egress fibre.
                up = SerialLink(
                    self.sim,
                    link_config,
                    name=f"node{index}.c{channel}.up",
                    rx_store=self.switch.ingress_store(port),
                )
                down = SerialLink(
                    self.sim,
                    link_config,
                    name=f"node{index}.c{channel}.down",
                )
                self.switch.attach_egress(port, down)
                node.device.connect_channel(ChannelEndpointView(up, down))
                self._node_links[node.hostname].extend((up, down))

        for node in self.nodes:
            self.plane.register_host(
                node.agent,
                transceivers=channels_per_node,
                donor_capacity_bytes=node.spec.dram_bytes // 2,
            )
        self.plane.add_switch(
            self.SWITCH_NAME, nodes * channels_per_node, driver=driver
        )
        for index in range(nodes):
            for channel in range(channels_per_node):
                port = index * channels_per_node + channel
                self.plane.add_switch_cable(
                    f"node{index}", channel, self.SWITCH_NAME, port
                )
        self.driver = driver
        self.admin_token = self.plane.acl.issue_token(Role.ADMIN)

    def _sync_circuit_llcs(self, port_a: int, port_b: int) -> None:
        """Link bring-up on a fresh circuit: both LLCs agree on frame
        identifiers (§IV-A4) — stale state from a previous peer is
        discarded before any transaction flows."""
        for port in (port_a, port_b):
            node_index, channel = divmod(port, self.channels_per_node)
            self.nodes[node_index].device.llcs[channel].reset_link()

    # -- topology hooks -----------------------------------------------------------
    def _settle_after_attach(self, attachment: Attachment) -> None:
        # Link bring-up: wait out the optical switch's reconfiguration
        # window (during which the new circuits are dark) before the
        # caller starts issuing transactions.
        self.sim.run(
            until=self.sim.now + self.switch.reconfiguration_s * 1.5
        )

    def _register_network(self, registry) -> None:
        for links in self._node_links.values():
            for link in links:
                link.register_metrics(registry)

    def links_of(self, hostname: str) -> List[SerialLink]:
        self.node(hostname)  # KeyError on unknown host
        return list(self._node_links[hostname])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RackTestbed(nodes={len(self.nodes)}, "
            f"circuits={self.driver.circuits()})"
        )
