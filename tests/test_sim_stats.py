"""Tests for the statistics instrumentation (the code every benchmark
reports numbers through)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Histogram,
    LatencyRecorder,
    RunningStats,
    TimeWeightedValue,
    cdf_points,
    percentile,
)


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0

    def test_median_of_two(self):
        assert percentile([1.0, 3.0], 50) == 2.0

    def test_extremes(self):
        values = sorted([4.0, 1.0, 9.0, 2.0])
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=80,
        ),
        q=st.floats(min_value=0, max_value=100),
    )
    def test_matches_numpy_linear_method(self, values, q):
        ordered = sorted(values)
        ours = percentile(ordered, q)
        theirs = float(np.percentile(ordered, q))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)


class TestRunningStats:
    def test_mean_and_variance(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(32.0 / 7.0)

    def test_min_max_total(self):
        stats = RunningStats()
        stats.extend([3.0, -1.0, 7.0])
        assert stats.minimum == -1.0
        assert stats.maximum == 7.0
        assert stats.total == 9.0

    def test_empty_stats_safe(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    @settings(max_examples=40, deadline=None)
    @given(
        left=st.lists(st.floats(min_value=-1e4, max_value=1e4,
                                allow_nan=False), min_size=1, max_size=40),
        right=st.lists(st.floats(min_value=-1e4, max_value=1e4,
                                 allow_nan=False), min_size=1, max_size=40),
    )
    def test_merge_equals_sequential(self, left, right):
        a = RunningStats()
        a.extend(left)
        b = RunningStats()
        b.extend(right)
        merged = a.merge(b)
        sequential = RunningStats()
        sequential.extend(left + right)
        assert merged.count == sequential.count
        assert merged.mean == pytest.approx(sequential.mean, abs=1e-6)
        assert merged.variance == pytest.approx(
            sequential.variance, rel=1e-6, abs=1e-6
        )
        assert merged.minimum == sequential.minimum
        assert merged.maximum == sequential.maximum


class TestHistogram:
    def test_binning(self):
        hist = Histogram(0.0, 10.0, bins=10)
        for value in (0.5, 1.5, 1.7, 9.9):
            hist.add(value)
        assert hist.counts[0] == 1
        assert hist.counts[1] == 2
        assert hist.counts[9] == 1

    def test_under_overflow(self):
        hist = Histogram(0.0, 1.0, bins=2)
        hist.add(-0.1)
        hist.add(1.0)  # right edge is exclusive
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert hist.total == 2

    def test_normalized(self):
        hist = Histogram(0.0, 2.0, bins=2)
        hist.add(0.5)
        hist.add(1.5)
        hist.add(1.6)
        assert hist.normalized() == pytest.approx([1 / 3, 2 / 3])

    def test_bin_edges(self):
        hist = Histogram(0.0, 1.0, bins=4)
        assert hist.bin_edges() == pytest.approx([0, 0.25, 0.5, 0.75, 1.0])

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 0.0, bins=4)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)


class TestLatencyRecorder:
    def test_cdf_monotone(self):
        recorder = LatencyRecorder()
        recorder.extend([5.0, 1.0, 3.0, 2.0, 4.0])
        cdf = recorder.cdf()
        values = [v for v, _p in cdf]
        probs = [p for _v, p in cdf]
        assert values == sorted(values)
        assert probs == sorted(probs)
        assert probs[-1] == 1.0

    def test_fraction_below(self):
        recorder = LatencyRecorder()
        recorder.extend([1.0, 2.0, 3.0, 4.0])
        assert recorder.fraction_below(2.5) == 0.5
        assert recorder.fraction_below(0.5) == 0.0
        assert recorder.fraction_below(10.0) == 1.0

    def test_degradation_at(self):
        recorder = LatencyRecorder()
        recorder.extend([1.0] * 9 + [11.0])
        # mean = 2.0; p90 ≈ 2.0 → degradation ≈ 0
        assert recorder.degradation_at(90) == pytest.approx(
            recorder.percentile(90) / 2.0 - 1.0
        )

    def test_cdf_points_helper(self):
        points = cdf_points([3.0, 1.0])
        assert points == [(1.0, 0.5), (3.0, 1.0)]
        assert cdf_points([]) == []


class TestTimeWeightedValue:
    def test_constant_signal(self):
        meter = TimeWeightedValue(0.0, initial=5.0)
        assert meter.time_average(10.0) == 5.0

    def test_step_signal(self):
        meter = TimeWeightedValue(0.0, initial=0.0)
        meter.update(5.0, 10.0)   # 0 for 5s, then 10
        assert meter.time_average(10.0) == pytest.approx(5.0)

    def test_adjust(self):
        meter = TimeWeightedValue(0.0, initial=2.0)
        meter.adjust(4.0, +3.0)
        assert meter.value == 5.0
        assert meter.time_average(8.0) == pytest.approx(
            (2.0 * 4 + 5.0 * 4) / 8
        )

    def test_reset_discards_history(self):
        meter = TimeWeightedValue(0.0, initial=100.0)
        meter.update(10.0, 1.0)
        meter.reset(10.0)
        assert meter.time_average(20.0) == pytest.approx(1.0)

    def test_time_going_backwards_rejected(self):
        meter = TimeWeightedValue(5.0)
        with pytest.raises(ValueError):
            meter.update(4.0, 1.0)

    def test_zero_span_returns_current(self):
        meter = TimeWeightedValue(3.0, initial=7.0)
        assert meter.time_average(3.0) == 7.0


class TestEdgeCases:
    """Boundary behaviour the summary/exporter paths rely on."""

    def test_percentile_q0_and_q100_single_element(self):
        assert percentile([42.0], 0) == 42.0
        assert percentile([42.0], 100) == 42.0

    def test_percentile_q0_q100_are_min_max(self):
        values = sorted([3.0, -1.0, 7.5, 0.0, 2.0])
        assert percentile(values, 0) == min(values)
        assert percentile(values, 100) == max(values)

    def test_percentile_boundary_qs_accepted(self):
        # 0 and 100 are inclusive endpoints, not out-of-range.
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 100.0) == 2.0
        with pytest.raises(ValueError):
            percentile([1.0], -0.001)

    def test_histogram_render_with_no_samples(self):
        hist = Histogram(0.0, 10.0, bins=4, name="empty")
        text = hist.render()
        assert "empty (n=0)" in text
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 bins, no under/overflow rows
        for line in lines[1:]:
            assert line.rstrip().endswith("0")  # zero count, zero-width bar
            assert "#" not in line

    def test_histogram_render_empty_buckets_between_full_ones(self):
        hist = Histogram(0.0, 4.0, bins=4)
        hist.add(0.5)
        hist.add(3.5)
        lines = hist.render(width=10).splitlines()
        assert len(lines) == 4
        assert "#" in lines[0] and "#" in lines[3]
        assert "#" not in lines[1] and "#" not in lines[2]

    def test_histogram_render_shows_overflow_tallies(self):
        hist = Histogram(0.0, 1.0, bins=2)
        hist.add(-1.0)
        hist.add(5.0)
        text = hist.render()
        assert "underflow" in text
        assert "overflow" in text

    def test_latency_recorder_zero_samples(self):
        recorder = LatencyRecorder("idle")
        assert recorder.count == 0
        assert recorder.mean == 0.0
        assert recorder.cdf() == []
        assert recorder.fraction_below(1.0) == 0.0
        assert recorder.degradation_at(99) == 0.0
        with pytest.raises(ValueError):
            recorder.percentile(50)
