"""Prometheus text exposition: rendering, the strict parser, and the
REST scrape endpoint.

The acceptance-criteria test is the scrape round-trip: a live testbed's
``GET /v1/metrics`` body must survive :func:`parse_prometheus` — the
strict parser that enforces every invariant a real scraper relies on —
and agree with ``registry.snapshot()`` value for value.
"""

import math

import pytest

from repro.control import RestApi
from repro.mem import MIB
from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    PromParseError,
    parse_prometheus,
    render_prometheus,
)
from repro.obs.promtext import metric_name
from repro.testbed import Testbed


class TestNameSanitization:
    def test_dotted_name_maps_to_underscores(self):
        assert metric_name("endpoint.rtt_s") == "endpoint_rtt_s"
        assert metric_name("net.faults.frames_dropped") == (
            "net_faults_frames_dropped"
        )

    def test_illegal_characters_become_underscores(self):
        assert metric_name("link utilization%") == "link_utilization_"

    def test_leading_digit_gets_prefixed(self):
        assert metric_name("9to5.load") == "_9to5_load"

    def test_colons_survive(self):
        assert metric_name("ns:metric") == "ns:metric"


class TestRenderParseRoundTrip:
    def test_counter_and_gauge_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("bus.loads", node="node0").inc(16)
        registry.gauge("link.utilization", link="ch0").set(0.75)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["types"]["bus_loads"] == "counter"
        assert parsed["types"]["link_utilization"] == "gauge"
        assert parsed["samples"][("bus_loads", (("node", "node0"),))] == 16
        assert parsed["samples"][
            ("link_utilization", (("link", "ch0"),))
        ] == 0.75

    def test_help_preserves_dotted_name(self):
        registry = MetricsRegistry()
        registry.counter("dram.reads").inc()
        parsed = parse_prometheus(render_prometheus(registry))
        assert "dram.reads" in parsed["helps"]["dram_reads"]

    def test_label_values_escape_and_unescape(self):
        registry = MetricsRegistry()
        awkward = 'a"b\\c\nd'
        registry.counter("odd.series", tag=awkward).inc(2)
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parsed = parse_prometheus(text)
        assert parsed["samples"][("odd_series", (("tag", awkward),))] == 2

    def test_histogram_renders_full_family(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "rtt", low=0.0, high=1.0, bins=4, node="node0"
        )
        for value in (0.1, 0.3, 0.3, 0.9, 2.5):  # one overflow
            hist.observe(value)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["types"]["rtt"] == "histogram"
        label = ("node", "node0")

        def bucket(le):
            return parsed["samples"][("rtt_bucket", tuple(sorted(
                (label, ("le", le)))))]

        assert bucket("0.25") == 1
        assert bucket("0.5") == 3
        assert bucket("1") == 4
        assert bucket("+Inf") == 5
        assert parsed["samples"][("rtt_count", (label,))] == 5
        assert parsed["samples"][("rtt_sum", (label,))] == pytest.approx(4.1)

    def test_underflow_folds_into_first_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", low=1.0, high=2.0, bins=2)
        hist.observe(0.5)  # below low
        hist.observe(1.2)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["samples"][("lat_bucket", (("le", "1.5"),))] == 2

    def test_collectors_run_before_rendering(self):
        registry = MetricsRegistry()
        source = {"served": 0}
        registry.add_collector(
            lambda reg: reg.gauge("endpoint.served").set(source["served"])
        )
        source["served"] = 9
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["samples"][("endpoint_served", ())] == 9

    def test_infinite_gauge_round_trips(self):
        registry = MetricsRegistry()
        registry.gauge("weird.value").set(math.inf)
        parsed = parse_prometheus(render_prometheus(registry))
        assert parsed["samples"][("weird_value", ())] == math.inf

    def test_dotted_collision_with_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b").inc()
        registry.gauge("a_b").set(1)
        with pytest.raises(ValueError):
            render_prometheus(registry)

    def test_live_testbed_exposition_matches_snapshot(self):
        """Every rendered sample equals its snapshot counterpart."""
        testbed = Testbed()
        attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
        window = testbed.remote_window_range(attachment)
        testbed.node0.run_store(window.start, bytes(128))
        testbed.node0.run_load(window.start)
        registry = MetricsRegistry()
        testbed.register_observability(registry)
        snapshot = registry.snapshot()
        parsed = parse_prometheus(render_prometheus(registry))
        assert len(parsed["samples"]) >= len(parsed["types"])
        value = parsed["samples"][
            ("bus_loads", (("bus", "node0.bus"), ("node", "node0")))
        ]
        assert value == snapshot["bus.loads{bus=node0.bus,node=node0}"]


class TestStrictParserRejections:
    def test_sample_without_type_declaration(self):
        with pytest.raises(PromParseError):
            parse_prometheus("orphan_metric 1\n")

    def test_type_after_samples(self):
        text = (
            "# TYPE a counter\na 1\n# TYPE a counter\n"
        )
        with pytest.raises(PromParseError):
            parse_prometheus(text)

    def test_duplicate_type(self):
        text = "# TYPE a counter\n# TYPE a gauge\n"
        with pytest.raises(PromParseError):
            parse_prometheus(text)

    def test_unknown_type_keyword(self):
        with pytest.raises(PromParseError):
            parse_prometheus("# TYPE a exotic\n")

    def test_illegal_metric_name(self):
        with pytest.raises(PromParseError):
            parse_prometheus("# TYPE a counter\n9bad 1\n")

    def test_bad_label_syntax(self):
        with pytest.raises(PromParseError):
            parse_prometheus('# TYPE a counter\na{node=node0} 1\n')

    def test_duplicate_label_name(self):
        with pytest.raises(PromParseError):
            parse_prometheus('# TYPE a counter\na{x="1",x="2"} 1\n')

    def test_illegal_escape_in_label(self):
        with pytest.raises(PromParseError):
            parse_prometheus('# TYPE a counter\na{x="\\q"} 1\n')

    def test_duplicate_series(self):
        text = '# TYPE a counter\na{n="0"} 1\na{n="0"} 2\n'
        with pytest.raises(PromParseError):
            parse_prometheus(text)

    def test_unparseable_value(self):
        with pytest.raises(PromParseError):
            parse_prometheus("# TYPE a counter\na banana\n")

    def test_timestamped_sample_is_accepted(self):
        parsed = parse_prometheus("# TYPE a counter\na 1 1234567\n")
        assert parsed["samples"][("a", ())] == 1

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 2\nh_sum 1.0\nh_count 2\n'
        )
        with pytest.raises(PromParseError):
            parse_prometheus(text)

    def test_histogram_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 2\n'
            "h_sum 1.0\nh_count 2\n"
        )
        with pytest.raises(PromParseError):
            parse_prometheus(text)

    def test_histogram_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\nh_sum 1.0\nh_count 3\n'
        )
        with pytest.raises(PromParseError):
            parse_prometheus(text)

    def test_histogram_missing_sum(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="+Inf"} 2\nh_count 2\n'
        with pytest.raises(PromParseError):
            parse_prometheus(text)

    def test_free_form_comments_are_ignored(self):
        parsed = parse_prometheus("# scraped at dawn\n# TYPE a counter\na 1\n")
        assert parsed["samples"][("a", ())] == 1


@pytest.fixture()
def testbed():
    return Testbed()


class TestRestScrapeEndpoint:
    def test_metrics_route_round_trips_through_strict_parser(self, testbed):
        """Acceptance: /v1/metrics body parses strictly and carries the
        datapath counters the run produced."""
        attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
        window = testbed.remote_window_range(attachment)
        testbed.node0.run_store(window.start, bytes(128))
        registry = MetricsRegistry()
        testbed.register_observability(registry)

        api = RestApi(testbed.plane, registry=registry)
        status, body = api.handle(
            "GET", "/v1/metrics", token=testbed.admin_token
        )
        assert status == 200
        assert body["content_type"] == CONTENT_TYPE
        parsed = parse_prometheus(body["body"])
        stores = parsed["samples"][
            ("bus_stores", (("bus", "node0.bus"), ("node", "node0")))
        ]
        assert stores >= 1

    def test_scrape_reflects_traffic_between_scrapes(self, testbed):
        attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
        window = testbed.remote_window_range(attachment)
        registry = MetricsRegistry()
        testbed.register_observability(registry)
        api = RestApi(testbed.plane, registry=registry)

        def scrape_loads():
            _status, body = api.handle(
                "GET", "/v1/metrics", token=testbed.admin_token
            )
            samples = parse_prometheus(body["body"])["samples"]
            return samples[
                ("bus_loads", (("bus", "node0.bus"), ("node", "node0")))
            ]

        before = scrape_loads()
        for _ in range(3):
            testbed.node0.run_load(window.start)
        assert scrape_loads() == before + 3

    def test_metrics_route_without_registry_is_503(self, testbed):
        api = RestApi(testbed.plane)
        status, body = api.handle(
            "GET", "/v1/metrics", token=testbed.admin_token
        )
        assert status == 503
        assert body["code"] == "obs/no-registry"

    def test_metrics_route_requires_token(self, testbed):
        api = RestApi(testbed.plane, registry=MetricsRegistry())
        status, _body = api.handle("GET", "/v1/metrics")
        assert status == 401
