"""Fig. 1 experiment driver: replay a trace against both models.

The scheduler is "an online best-fit allocation policy without resource
overcommitment" (§II). Tasks that cannot be placed wait in a FIFO
pending queue and are retried whenever capacity frees up. Fragmentation
and power-off metrics are sampled time-weighted over the replay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..sim.stats import TimeWeightedValue
from .models import (
    AllocationFailure,
    DisaggregatedDatacentre,
    FixedDatacentre,
    Placement,
)
from .trace import EventKind, TraceConfig, TraceEvent, synthesize_trace

__all__ = ["UtilizationReport", "replay_trace", "run_fig1_experiment",
           "scaled_trace_config"]

Datacentre = Union[FixedDatacentre, DisaggregatedDatacentre]


@dataclass
class UtilizationReport:
    """Time-averaged Fig. 1 metrics for one datacentre model."""

    model: str
    cpu_fragmentation_pct: float
    memory_fragmentation_pct: float
    compute_off_pct: float
    memory_off_pct: float
    placed_tasks: int
    deferred_placements: int
    peak_pending: int

    def as_row(self) -> Dict[str, float]:
        return {
            "model": self.model,
            "frag_cpu_%": round(self.cpu_fragmentation_pct, 2),
            "frag_mem_%": round(self.memory_fragmentation_pct, 2),
            "off_cpu_%": round(self.compute_off_pct, 2),
            "off_mem_%": round(self.memory_off_pct, 2),
        }


def _off_counts(datacentre: Datacentre) -> Tuple[float, float]:
    if isinstance(datacentre, FixedDatacentre):
        off = datacentre.servers_off()
        return off, off
    return datacentre.compute_off(), datacentre.memory_off()


def _unit_counts(datacentre: Datacentre) -> Tuple[float, float]:
    if isinstance(datacentre, FixedDatacentre):
        return datacentre.servers, datacentre.servers
    return datacentre.compute_modules, datacentre.memory_modules


def replay_trace(
    datacentre: Datacentre,
    events: List[TraceEvent],
    warmup_fraction: float = 0.25,
) -> UtilizationReport:
    """Replay SUBMIT/FINISH events; returns time-averaged metrics.

    The first ``warmup_fraction`` of simulated time is excluded from the
    averages (the datacentre starts empty; the paper reports steady
    state).
    """
    if not events:
        raise ValueError("empty trace")
    start = events[0].time
    # Measure only while load keeps arriving: after the last SUBMIT the
    # datacentre just drains, which says nothing about packing quality.
    end = max(e.time for e in events if e.kind is EventKind.SUBMIT)
    measure_from = start + warmup_fraction * (end - start)

    placements: Dict[int, Placement] = {}
    pending: Deque[TraceEvent] = deque()
    finished_early: set = set()
    deferred = 0
    peak_pending = 0

    frag_cpu = TimeWeightedValue(start)
    frag_mem = TimeWeightedValue(start)
    off_cpu = TimeWeightedValue(start)
    off_mem = TimeWeightedValue(start)
    cpu_units, mem_units = _unit_counts(datacentre)

    def sample(now: float) -> None:
        frag_cpu.update(now, datacentre.stranded_cpu() / cpu_units * 100.0)
        frag_mem.update(now, datacentre.stranded_memory() / mem_units * 100.0)
        off_c, off_m = _off_counts(datacentre)
        off_cpu.update(now, off_c / cpu_units * 100.0)
        off_mem.update(now, off_m / mem_units * 100.0)

    def try_pending(now: float) -> None:
        """Strict-FIFO retry: the queue head either fits or keeps waiting."""
        while pending:
            event = pending[0]
            if event.task.task_id in finished_early:
                finished_early.discard(event.task.task_id)
                pending.popleft()
                continue
            try:
                placements[event.task.task_id] = datacentre.allocate(
                    event.task
                )
                pending.popleft()
            except AllocationFailure:
                break

    warmed_up = False
    finished = False
    for event in events:
        if event.time > end:
            finished = True
            break
        if not warmed_up and event.time >= measure_from:
            # Steady state reached: discard the fill-up transient.
            for meter in (frag_cpu, frag_mem, off_cpu, off_mem):
                meter.reset(event.time)
            warmed_up = True
        sample(event.time)
        if event.kind is EventKind.SUBMIT:
            try:
                placements[event.task.task_id] = datacentre.allocate(event.task)
            except AllocationFailure:
                deferred += 1
                pending.append(event)
                peak_pending = max(peak_pending, len(pending))
        else:
            placement = placements.pop(event.task.task_id, None)
            if placement is None:
                # Task finished while still pending: drop the request.
                finished_early.add(event.task.task_id)
            else:
                datacentre.release(placement)
                try_pending(event.time)
        sample(event.time)

    model_name = type(datacentre).__name__
    return UtilizationReport(
        model=model_name,
        cpu_fragmentation_pct=frag_cpu.time_average(end),
        memory_fragmentation_pct=frag_mem.time_average(end),
        compute_off_pct=off_cpu.time_average(end),
        memory_off_pct=off_mem.time_average(end),
        placed_tasks=len(placements),
        deferred_placements=deferred,
        peak_pending=peak_pending,
    )


def scaled_trace_config(units: int, tasks: Optional[int] = None,
                        seed: int = 17) -> TraceConfig:
    """A trace whose steady-state CPU demand slightly exceeds ``units``.

    The default :class:`TraceConfig` is calibrated for 400 units; this
    helper rescales the task duration so the demand-to-capacity ratio
    (≈1.09, the Fig. 1 operating point) is preserved at any scale.
    """
    base = TraceConfig()
    base_concurrency = base.mean_duration / base.mean_interarrival
    duration = base.mean_duration * units / 400.0
    concurrency = duration / base.mean_interarrival
    if tasks is None:
        # Enough tasks that steady state lasts >= 3x the fill time.
        tasks = int(4 * concurrency)
    return TraceConfig(
        tasks=tasks,
        seed=seed,
        cpu_log_mean=base.cpu_log_mean,
        cpu_log_sigma=base.cpu_log_sigma,
        ratio_log_mean=base.ratio_log_mean,
        ratio_log_sigma=base.ratio_log_sigma,
        mean_interarrival=base.mean_interarrival,
        mean_duration=duration,
    )


def run_fig1_experiment(
    config: Optional[TraceConfig] = None,
    units: int = 400,
    links_per_module: int = 16,
) -> Dict[str, UtilizationReport]:
    """Run both models on the same trace (Fig. 1).

    ``units`` defaults to a ~31× scale-down of the paper's 12 555
    modules; the default :class:`TraceConfig` load is calibrated for
    exactly this capacity (use :func:`scaled_trace_config` for other
    sizes — the load-to-capacity ratio must be preserved or the
    operating point changes).
    """
    config = config or TraceConfig()
    events = synthesize_trace(config)
    fixed = replay_trace(FixedDatacentre(units), events)
    disaggregated = replay_trace(
        DisaggregatedDatacentre(units, units, links_per_module), events
    )
    return {"fixed": fixed, "disaggregated": disaggregated}
