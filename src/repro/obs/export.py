"""Exporters: Chrome ``trace_event`` JSON, metrics JSON, summary text.

The Chrome trace format (loadable in Perfetto or ``chrome://tracing``)
is a JSON object with a ``traceEvents`` list. We emit:

* ``"X"`` *complete* events — one enclosing span per traced transaction
  plus one child span per derived segment, on ``pid`` = the
  transactions process, ``tid`` = the base transaction id. Child spans
  of one transaction share boundaries, so sorting by ``(ts, -dur)``
  yields a well-nested stack (validated by
  :func:`validate_chrome_trace`). Free-standing component spans (link
  serialization, engine run loop) get one ``pid`` per track.
* ``"I"`` *instant* events — replay requests, fault drops/corruptions.
* ``"M"`` *metadata* events — human-readable process/thread names.

Timestamps are microseconds of simulated time (``sim_seconds * 1e6``).

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from .metrics import MetricsRegistry
from .summary import summary_from_snapshot
from .trace import Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_metrics_json",
    "render_metrics_summary",
]

_TXN_PID = 1  # the per-transaction process; component tracks follow
_US = 1e6  # simulated seconds -> trace microseconds


def _meta(pid: int, name: str) -> Dict[str, Any]:
    return {
        "ph": "M",
        "name": "process_name",
        "pid": pid,
        "tid": 0,
        "ts": 0,
        "args": {"name": name},
    }


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Convert a tracer's records into a Chrome ``trace_event`` document."""
    events: List[Dict[str, Any]] = [_meta(_TXN_PID, "transactions")]
    track_pids: Dict[str, int] = {}

    def pid_for(track: str) -> int:
        pid = track_pids.get(track)
        if pid is None:
            pid = _TXN_PID + 1 + len(track_pids)
            track_pids[track] = pid
            events.append(_meta(pid, track))
        return pid

    for record in sorted(tracer.transactions.values(), key=lambda r: r.start):
        segments = record.segments()
        if not segments:
            continue
        tid = record.base_id
        events.append(
            {
                "ph": "X",
                "name": f"txn:{record.op}",
                "cat": "txn",
                "pid": _TXN_PID,
                "tid": tid,
                "ts": record.start * _US,
                "dur": record.latency * _US,
                "args": {
                    "txn": record.base_id,
                    "op": record.op,
                    "bytes": record.bytes,
                    "origin": record.origin,
                    "done": record.done,
                },
            }
        )
        for stage, t0, t1, where in segments:
            events.append(
                {
                    "ph": "X",
                    "name": stage,
                    "cat": "stage",
                    "pid": _TXN_PID,
                    "tid": tid,
                    "ts": t0 * _US,
                    "dur": (t1 - t0) * _US,
                    "args": {"txn": record.base_id, "where": where},
                }
            )

    for span in tracer.spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": "component",
                "pid": pid_for(span.track),
                "tid": 0,
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "args": dict(span.args),
            }
        )
    for inst in tracer.instants:
        events.append(
            {
                "ph": "I",
                "name": inst.name,
                "cat": "event",
                "pid": pid_for(inst.track),
                "tid": 0,
                "ts": inst.start * _US,
                "s": "t",
                "args": dict(inst.args),
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.obs",
            "sample_every": tracer.sample_every,
            "transactions": len(tracer.transactions),
            "dropped_by_sampling": tracer.dropped_by_sampling,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str) -> Dict[str, Any]:
    document = chrome_trace(tracer)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=1)
    return document


TraceDoc = Union[Dict[str, Any], List[Dict[str, Any]]]


def validate_chrome_trace(document: TraceDoc) -> int:
    """Validate a Chrome-trace document; returns the event count.

    Checks, raising :class:`ValueError` on the first violation:

    * required keys ``ph`` / ``ts`` / ``pid`` / ``name`` on every event,
      with numeric non-negative ``ts`` (and ``dur`` on ``"X"`` events);
    * monotonic span nesting per ``(pid, tid)`` lane: sorted by
      ``(ts, -dur)``, every complete event must close no later than the
      enclosing event still on the stack.
    """
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("document has no traceEvents list")
    else:
        events = document
    if not events:
        raise ValueError("trace contains no events")

    lanes: Dict[Any, List[Dict[str, Any]]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index} is not an object")
        for key in ("ph", "ts", "pid", "name"):
            if key not in event:
                raise ValueError(f"event {index} missing required key {key!r}")
        ts = event["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"event {index} has bad ts: {ts!r}")
        if event["ph"] == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"event {index} ({event['name']}) bad dur")
            lanes.setdefault((event["pid"], event.get("tid", 0)), []).append(
                event
            )

    for lane, lane_events in lanes.items():
        lane_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[float] = []  # open-span end times, outermost first
        for event in lane_events:
            start = event["ts"]
            end = start + event["dur"]
            while stack and start >= stack[-1] - 1e-9:
                stack.pop()
            if stack and end > stack[-1] + 1e-9:
                raise ValueError(
                    f"span {event['name']!r} on lane {lane} overlaps its "
                    f"parent: ends {end} > {stack[-1]}"
                )
            stack.append(end)
    return len(events)


def write_metrics_json(registry: MetricsRegistry, path: str) -> Dict[str, float]:
    snapshot = registry.snapshot()
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
    return snapshot


def render_metrics_summary(
    registry: MetricsRegistry, title: str = "metrics"
) -> str:
    """End-of-run summary table for a registry (collects first)."""
    return summary_from_snapshot(title, registry.snapshot()).render()
