"""Span-based transaction tracer.

The tracer follows individual memory transactions end to end through
the simulated stack. Components do not open and close spans; instead
they **mark** stage boundaries as the transaction crosses them::

    bus.issue -> rmmu.translate -> routing.forward -> llc.submit
      -> llc.frame -> llc.deliver -> dram.service -> dram.done
      -> routing.response -> llc.submit -> llc.frame -> llc.deliver
      -> complete

Spans are derived between consecutive marks, which makes them
contiguous and non-overlapping by construction: the child spans of a
transaction tile its end-to-end latency exactly (the property the
observability tests assert). Components with activity that is not tied
to one transaction (link serialization, replay requests, the engine's
run loop) record free-standing :meth:`Tracer.span` / instant events on
named tracks instead.

Cost model
----------
``ENABLED`` is a module-level flag. Every instrumented call site in the
datapath reads it **before** touching the tracer or allocating
anything, so the disabled cost is one global load plus a branch per
site. When enabled, 1-in-N sampling (``sample_every``) further bounds
the volume: a transaction is traced iff ``base_txn_id % sample_every
== 0``, a deterministic rule that needs no per-transaction state for
declined ids and keeps split-burst segments attributed to their base
transaction.

This module must stay stdlib-only — the simulation kernel imports it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "ENABLED",
    "Tracer",
    "TxnRecord",
    "Span",
    "enable_tracing",
    "disable_tracing",
    "active_tracer",
    "tracing",
    "txn_begin",
    "txn_mark",
    "txn_end",
    "span",
    "instant",
]

#: Fast-path guard. Instrumented call sites check this before calling
#: any tracer function; nothing below allocates while it is False.
ENABLED = False

_TRACER: Optional["Tracer"] = None


class TxnRecord:
    """The traced life of one transaction (or burst).

    ``marks`` is the ordered list of ``(time, stage, where)`` boundary
    crossings; ``segments()`` derives the contiguous per-layer spans.
    """

    __slots__ = ("base_id", "op", "bytes", "origin", "marks", "done")

    def __init__(self, base_id: int, op: str, nbytes: int, origin: str):
        self.base_id = base_id
        self.op = op
        self.bytes = nbytes
        self.origin = origin
        self.marks: List[Tuple[float, str, str]] = []
        self.done = False

    @property
    def start(self) -> float:
        return self.marks[0][0] if self.marks else 0.0

    @property
    def end(self) -> float:
        return self.marks[-1][0] if self.marks else 0.0

    @property
    def latency(self) -> float:
        return self.end - self.start

    @property
    def stages(self) -> List[str]:
        return [stage for _t, stage, _w in self.marks]

    def segments(self) -> List[Tuple[str, float, float, str]]:
        """Contiguous child spans: ``(stage, start, end, where)``.

        Span *k* is named after the mark that opens it and ends at the
        next mark, so consecutive spans share boundaries — they cannot
        overlap and their durations telescope to the end-to-end latency.
        """
        out = []
        for index in range(len(self.marks) - 1):
            t0, stage, where = self.marks[index]
            t1 = self.marks[index + 1][0]
            out.append((stage, t0, t1, where))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TxnRecord(id={self.base_id}, op={self.op}, "
            f"marks={len(self.marks)}, done={self.done})"
        )


class Span:
    """A free-standing component span (not tied to one transaction)."""

    __slots__ = ("name", "track", "start", "end", "args")

    def __init__(
        self, name: str, track: str, start: float, end: float, args: dict
    ):
        self.name = name
        self.track = track
        self.start = start
        self.end = end
        self.args = args


class Tracer:
    """Collects transaction records and component spans for one session."""

    def __init__(self, sample_every: int = 1):
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every}")
        self.sample_every = sample_every
        self.transactions: Dict[int, TxnRecord] = {}
        self.spans: List[Span] = []
        self.instants: List[Span] = []
        self.dropped_by_sampling = 0

    # -- transaction lifecycle ------------------------------------------------
    def _sampled(self, base_id: int) -> bool:
        return base_id % self.sample_every == 0

    def txn_begin(
        self, now: float, base_id: int, op: str, nbytes: int, where: str
    ) -> None:
        record = self.transactions.get(base_id)
        if record is None:
            if not self._sampled(base_id):
                self.dropped_by_sampling += 1
                return
            record = TxnRecord(base_id, op, nbytes, where)
            self.transactions[base_id] = record
        record.marks.append((now, "bus.issue", where))

    def txn_mark(
        self, now: float, base_id: int, stage: str, where: str
    ) -> None:
        record = self.transactions.get(base_id)
        if record is not None:
            record.marks.append((now, stage, where))

    def txn_end(self, now: float, base_id: int, where: str) -> None:
        record = self.transactions.get(base_id)
        if record is not None:
            record.marks.append((now, "complete", where))
            record.done = True

    # -- free-standing events -------------------------------------------------
    def span(
        self, name: str, start: float, end: float, track: str, **args: Any
    ) -> None:
        self.spans.append(Span(name, track, start, end, args))

    def instant(self, name: str, now: float, track: str, **args: Any) -> None:
        self.instants.append(Span(name, track, now, now, args))

    # -- queries --------------------------------------------------------------
    def completed(self) -> List[TxnRecord]:
        return [r for r in self.transactions.values() if r.done]

    def find(self, **predicates: Any) -> List[TxnRecord]:
        """Completed records matching attribute equality predicates."""
        out = []
        for record in self.completed():
            if all(
                getattr(record, key) == value
                for key, value in predicates.items()
            ):
                out.append(record)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Tracer(txns={len(self.transactions)}, "
            f"spans={len(self.spans)}, 1/{self.sample_every})"
        )


# -- module-level session management ---------------------------------------------


def enable_tracing(sample_every: int = 1) -> Tracer:
    """Install a fresh global tracer and flip the fast-path flag on."""
    global ENABLED, _TRACER
    _TRACER = Tracer(sample_every=sample_every)
    ENABLED = True
    return _TRACER


def disable_tracing() -> Optional[Tracer]:
    """Flip the flag off; returns the tracer that was collecting."""
    global ENABLED, _TRACER
    tracer, _TRACER = _TRACER, None
    ENABLED = False
    return tracer


def active_tracer() -> Optional[Tracer]:
    return _TRACER


@contextmanager
def tracing(sample_every: int = 1) -> Iterator[Tracer]:
    """``with tracing() as tracer: ...`` — enable for the block only."""
    tracer = enable_tracing(sample_every=sample_every)
    try:
        yield tracer
    finally:
        disable_tracing()


# -- call-site helpers ------------------------------------------------------------
# Instrumented components call these ONLY behind an ``if trace.ENABLED:``
# guard; the None-check below covers the enable/disable race within one
# dispatch batch, not the common path.


def txn_begin(
    now: float, base_id: int, op: str, nbytes: int, where: str
) -> None:
    if _TRACER is not None:
        _TRACER.txn_begin(now, base_id, op, nbytes, where)


def txn_mark(now: float, base_id: int, stage: str, where: str) -> None:
    if _TRACER is not None:
        _TRACER.txn_mark(now, base_id, stage, where)


def txn_end(now: float, base_id: int, where: str) -> None:
    if _TRACER is not None:
        _TRACER.txn_end(now, base_id, where)


def span(name: str, start: float, end: float, track: str, **args: Any) -> None:
    if _TRACER is not None:
        _TRACER.span(name, start, end, track, **args)


def instant(name: str, now: float, track: str, **args: Any) -> None:
    if _TRACER is not None:
        _TRACER.instant(name, now, track, **args)
