#!/usr/bin/env python3
"""Quickstart: attach disaggregated memory and touch it.

Builds the paper's three-node prototype (two FPGA-equipped AC922s plus
a client node), asks the software-defined control plane for 4 MiB of a
neighbour's memory, and then loads/stores through the full simulated
datapath: bus → OpenCAPI M1 → RMMU → routing → LLC → 100 Gb/s wire →
LLC → OpenCAPI C1 → donor DRAM.

Run:  python examples/quickstart.py
"""

from repro.mem import CACHELINE_BYTES, MIB
from repro.obs import RunSummary
from repro.osmodel import PagePolicy
from repro.testbed import Testbed


def main() -> None:
    print("Building the 3-node ThymesisFlow prototype...")
    testbed = Testbed()

    print("Attaching 4 MiB of node1's memory to node0 "
          "(control plane: plan path -> steal -> program RMMU -> hotplug)")
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    plan = attachment.plan
    window = testbed.remote_window_range(attachment)

    summary = RunSummary("attachment")
    summary.section("control plane")
    summary.row("network id", attachment.flow.network_id)
    summary.row("sections", str(plan.section_indices))
    summary.row(
        "CPU-less NUMA node",
        f"{plan.numa_node_id} (SLIT distance {plan.numa_distance})",
    )
    summary.row(
        "window on node0", f"[{window.start:#x}, {window.end:#x})"
    )
    print(summary.render())

    print("\nStoring a cacheline on node0; reading it back...")
    payload = bytes(range(128))
    testbed.node0.run_store(window.start, payload)
    assert testbed.node0.run_load(window.start) == payload
    for _ in range(16):
        testbed.node0.run_load(window.start)
    rtt = testbed.node0.device.compute.rtt
    donor = testbed.node1.dram.read_now(attachment.grant.effective_base, 16)

    datapath = RunSummary("datapath")
    datapath.section("remote access")
    datapath.row("store + load back", "roundtrip OK")
    datapath.row(
        "bytes physically on node1",
        f"DRAM[{attachment.grant.effective_base:#x}] = {donor.hex()}",
    )
    datapath.row(
        "unloaded RTT",
        f"{rtt.mean * 1e9:.0f} ns "
        "(paper prototype: ~950 ns datapath + donor DRAM)",
    )
    print(datapath.render())

    print("\nThe kernel can also allocate from the new NUMA node:")
    mapping = testbed.node0.kernel.mmap(
        1 * MIB, PagePolicy.BIND, nodes=[plan.numa_node_id]
    )
    print(f"  mmap of 1 MiB -> {len(mapping.pages)} pages, "
          f"all on node {mapping.pages[0].node_id}")
    address = mapping.address_for_offset(0)
    testbed.node0.run_store(address, b"hello disaggregation!".ljust(
        CACHELINE_BYTES, b"\x00"))
    data = testbed.node0.run_load(address)
    print(f"  through the page mapping: {data.rstrip(bytes(1)).decode()!r}")

    testbed.node0.kernel.munmap(mapping)
    print("\nDetaching (offline sections, release donor pin, free path)...")
    testbed.detach(attachment)
    print("Done. Control-plane audit log:")
    for line in testbed.plane.audit_log:
        print(f"  - {line}")


if __name__ == "__main__":
    main()
