"""Smoke tests: every shipped example must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    "quickstart.py",
    "datacentre_motivation.py",
    "memcached_study.py",
    "database_partitions.py",
    "failure_injection.py",
    "rack_scale.py",
    "remote_buffer_tour.py",
    "telemetry_scrape.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_rtt():
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "RTT" in result.stdout
    assert "roundtrip OK" in result.stdout
