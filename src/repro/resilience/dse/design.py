"""Design builders: factorial grids and seeded evolutionary search.

A *design* is an ordered list of design points (factor → level maps);
``cells_for`` expands points into replicated cells, each of which maps
1:1 onto a content-addressed :class:`~repro.sweep.RunSpec`. Because
the sweep cache keys on (target, kwargs, seed, source fingerprint),
a killed design resumes for free: re-running the same design replays
every already-computed cell from cache and only executes the rest.

The evolutionary search (DAVOS-style) explores factor spaces too
large to enumerate: tournament selection plus per-factor mutation
over the level grid, with fitness supplied by a caller-provided batch
evaluator (which routes through the sweep engine, so revisited points
cost nothing). All randomness derives from one named
:class:`~repro.sim.rng.SeededRNG` stream, so a seeded search replays
identically.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...sim.rng import SeededRNG
from .factors import DseDesignError, EmptyFeasibleSetError

__all__ = [
    "Cell",
    "full_factorial",
    "fractional_factorial",
    "cells_for",
    "EvolutionarySearch",
    "EvolutionResult",
]

Point = Dict[str, Any]


def point_key(point: Point) -> str:
    """Canonical identity of a design point (sorted-key JSON)."""
    return json.dumps(point, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Cell:
    """One runnable unit: a design point plus a replicate seed."""

    point: Point
    seed: int
    replicate: int


def full_factorial(levels: Dict[str, List[Any]]) -> List[Point]:
    """Cartesian product of every factor's levels, in axis order."""
    if not levels:
        raise DseDesignError("empty factor space")
    names = list(levels)
    points = []
    for combo in itertools.product(*(levels[name] for name in names)):
        points.append(dict(zip(names, combo)))
    return points


def fractional_factorial(
    levels: Dict[str, List[Any]], fraction: int, phase: int = 0
) -> List[Point]:
    """A deterministic 1/``fraction`` lattice slice of the full grid.

    Keeps the cells whose level-index sum is congruent to ``phase``
    modulo ``fraction`` — the classic generalized half/quarter
    fraction (for two-level factors and ``fraction=2`` this is the
    resolution-preserving even/odd lattice). ``fraction=1`` is the
    full factorial.
    """
    if fraction < 1:
        raise DseDesignError(f"fraction must be >= 1, got {fraction}")
    if not 0 <= phase < fraction:
        raise DseDesignError(
            f"phase must be in [0, {fraction}), got {phase}"
        )
    names = list(levels)
    points = []
    for combo in itertools.product(
        *(range(len(levels[name])) for name in names)
    ):
        if sum(combo) % fraction != phase:
            continue
        points.append({
            name: levels[name][index]
            for name, index in zip(names, combo)
        })
    if not points:
        raise EmptyFeasibleSetError(
            f"1/{fraction} fraction (phase {phase}) selects no cells "
            f"from this grid"
        )
    return points


def cells_for(
    points: List[Point], replicates: int, base_seed: int
) -> List[Cell]:
    """Expand points into replicated cells with derived seeds.

    Replicate ``i`` of every point runs with seed ``base_seed + i`` —
    simple, documented, and visible in artifacts — so replicates are
    independent draws while the whole design stays a pure function of
    ``base_seed``.
    """
    if replicates < 1:
        raise DseDesignError(
            f"replicates must be >= 1, got {replicates}"
        )
    return [
        Cell(point=dict(point), seed=base_seed + i, replicate=i)
        for point in points
        for i in range(replicates)
    ]


@dataclass
class EvolutionResult:
    """Outcome of one evolutionary search."""

    best: Point
    best_fitness: float
    generations: List[Dict[str, Any]] = field(default_factory=list)
    evaluated: Dict[str, float] = field(default_factory=dict)

    def describe(self) -> Dict[str, Any]:
        return {
            "best": self.best,
            "best_fitness": self.best_fitness,
            "generations": self.generations,
            "points_evaluated": len(self.evaluated),
        }


class EvolutionarySearch:
    """Seeded tournament-selection + mutation search over a level grid.

    ``feasible`` (optional) prunes the space: a point failing the
    predicate is never evaluated. If no feasible point can be found —
    proven by enumeration for small spaces, or after a generous
    sampling budget for large ones — :class:`EmptyFeasibleSetError`
    is raised before any simulation runs.

    Fitness is *minimized*. The batch evaluator receives every not-
    yet-evaluated point of a generation at once so the caller can fan
    the cells out through the sweep engine.
    """

    #: Random-sampling budget per needed point before declaring the
    #: feasible set empty (only for spaces too large to enumerate).
    SAMPLE_BUDGET = 512

    #: Enumerability threshold: spaces up to this many points are
    #: checked for feasibility exactly.
    ENUMERATE_LIMIT = 8192

    def __init__(
        self,
        levels: Dict[str, List[Any]],
        *,
        population: int = 8,
        generations: int = 4,
        tournament: int = 2,
        mutation_rate: float = 0.35,
        elite: int = 1,
        seed: int = 0,
        feasible: Optional[Callable[[Point], bool]] = None,
    ):
        if not levels:
            raise DseDesignError("empty factor space")
        if population < 2:
            raise DseDesignError(
                f"population must be >= 2, got {population}"
            )
        if generations < 1:
            raise DseDesignError(
                f"generations must be >= 1, got {generations}"
            )
        if not 1 <= tournament <= population:
            raise DseDesignError(
                f"tournament size must be in [1, {population}], "
                f"got {tournament}"
            )
        if not 0.0 <= mutation_rate <= 1.0:
            raise DseDesignError(
                f"mutation_rate must be in [0, 1], got {mutation_rate}"
            )
        self.levels = {name: list(values) for name, values in levels.items()}
        self.population = population
        self.generations = generations
        self.tournament = tournament
        self.mutation_rate = mutation_rate
        self.elite = max(0, min(elite, population - 1))
        self.feasible = feasible
        self._rng = SeededRNG(seed).derive("dse/evolve")

    # -- point operations ------------------------------------------------------
    def _random_point(self, rng: SeededRNG) -> Point:
        return {
            name: values[rng.randint(0, len(values) - 1)]
            for name, values in self.levels.items()
        }

    def _mutate(self, point: Point, rng: SeededRNG) -> Point:
        child = dict(point)
        for name, values in self.levels.items():
            if len(values) < 2:
                continue
            if rng.random() >= self.mutation_rate:
                continue
            alternatives = [v for v in values if v != child[name]]
            child[name] = alternatives[rng.randint(0, len(alternatives) - 1)]
        return child

    def _space_size(self) -> int:
        size = 1
        for values in self.levels.values():
            size *= len(values)
        return size

    def _seed_population(self, rng: SeededRNG) -> List[Point]:
        """Feasible initial population, or a typed refusal."""
        if self._space_size() <= self.ENUMERATE_LIMIT:
            names = list(self.levels)
            feasible_points = [
                dict(zip(names, combo))
                for combo in itertools.product(
                    *(self.levels[name] for name in names)
                )
                if self.feasible is None or self.feasible(dict(zip(names, combo)))
            ]
            if not feasible_points:
                raise EmptyFeasibleSetError(
                    "no design point satisfies the feasibility "
                    "constraint (checked by full enumeration)"
                )
            population = []
            for _ in range(self.population):
                population.append(dict(
                    feasible_points[rng.randint(0, len(feasible_points) - 1)]
                ))
            return population
        population = []
        for _ in range(self.population):
            for _attempt in range(self.SAMPLE_BUDGET):
                candidate = self._random_point(rng)
                if self.feasible is None or self.feasible(candidate):
                    population.append(candidate)
                    break
            else:
                raise EmptyFeasibleSetError(
                    f"no feasible design point found in "
                    f"{self.SAMPLE_BUDGET} samples"
                )
        return population

    # -- search ----------------------------------------------------------------
    def run(
        self, evaluate: Callable[[List[Point]], List[float]]
    ) -> EvolutionResult:
        rng = self._rng
        fitness: Dict[str, float] = {}
        points_by_key: Dict[str, Point] = {}

        def score(batch: List[Point]) -> None:
            pending = []
            for point in batch:
                key = point_key(point)
                points_by_key.setdefault(key, point)
                if key not in fitness and not any(
                    point_key(p) == key for p in pending
                ):
                    pending.append(point)
            if pending:
                values = evaluate(pending)
                if len(values) != len(pending):
                    raise DseDesignError(
                        f"evaluator returned {len(values)} fitness "
                        f"values for {len(pending)} points"
                    )
                for point, value in zip(pending, values):
                    fitness[point_key(point)] = float(value)

        population = self._seed_population(rng)
        history: List[Dict[str, Any]] = []
        for generation in range(self.generations):
            score(population)
            # Deterministic rank: fitness, then canonical point text.
            ranked = sorted(
                population,
                key=lambda p: (fitness[point_key(p)], point_key(p)),
            )
            best = ranked[0]
            history.append({
                "generation": generation,
                "best": dict(best),
                "best_fitness": fitness[point_key(best)],
                "evaluated_so_far": len(fitness),
            })
            if generation == self.generations - 1:
                break
            next_population = [dict(p) for p in ranked[: self.elite]]
            while len(next_population) < self.population:
                contenders = [
                    population[rng.randint(0, len(population) - 1)]
                    for _ in range(self.tournament)
                ]
                parent = min(
                    contenders,
                    key=lambda p: (fitness[point_key(p)], point_key(p)),
                )
                child = self._mutate(parent, rng)
                if self.feasible is not None and not self.feasible(child):
                    child = dict(parent)
                next_population.append(child)
            population = next_population

        best_key = min(
            fitness, key=lambda key: (fitness[key], key)
        )
        return EvolutionResult(
            best=dict(points_by_key[best_key]),
            best_fitness=fitness[best_key],
            generations=history,
            evaluated=dict(fitness),
        )
