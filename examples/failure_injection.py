#!/usr/bin/env python3
"""Resilience: lossy links, fault campaigns, failover, and chaos runs.

Demonstrates the failure half of the stack, bottom to top:

1. the LLC's frame-replay protocol keeping a lossy 100 Gb/s channel
   *functionally perfect* (every cacheline survives);
2. credit backpressure under a tiny receive queue;
3. the control plane's REST interface and token security — errors now
   arrive as versioned ``{"error", "code"}`` bodies;
4. the REST resilience surface: ``GET /v1/health`` and
   ``POST /v1/faults`` arming a named fault campaign over HTTP;
5. control-plane self-healing: a link-kill campaign severs the
   lender's fault domain mid-workload, the health monitor fails the
   attachment over to a surviving lender, and the borrower-side write
   journal replays the buffer byte for byte;
6. the chaos CLI end to end: ``python -m repro chaos`` run twice with
   the same seed produces byte-identical result artifacts.

Run:  python examples/failure_injection.py
"""

import json
import os
import subprocess
import sys
import tempfile

import repro
from repro.control import HealthMonitor, RestApi, Role
from repro.core import LlcConfig, RetryPolicy
from repro.errors import RemoteMemoryError
from repro.mem import CACHELINE_BYTES, MIB
from repro.net import FaultInjector
from repro.resilience import (
    LinkKill,
    ResilientBuffer,
    ensure_injector,
    make_rest_fault_hook,
)
from repro.testbed import RackTestbed, Testbed


def lossy_link_demo() -> None:
    print("== 1. Frame replay on a lossy link ==")
    faults = FaultInjector(drop_probability=0.03, corrupt_probability=0.03)
    testbed = Testbed(fault_injectors={0: faults})
    attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)

    lines = 64
    for index in range(lines):
        testbed.node0.run_store(
            window.start + index * CACHELINE_BYTES,
            bytes([index + 1]) * CACHELINE_BYTES,
        )
    corrupted = 0
    for index in range(lines):
        data = testbed.node0.run_load(window.start + index * CACHELINE_BYTES)
        if data != bytes([index + 1]) * CACHELINE_BYTES:
            corrupted += 1
    tx_llc = testbed.node0.device.llcs[0]
    rx_llc = testbed.node1.device.llcs[0]
    print(f"frames dropped/corrupted by the wire: {faults.frames_dropped}"
          f"/{faults.frames_corrupted}")
    print(f"replay requests: {rx_llc.replays_requested + tx_llc.replays_requested}, "
          f"frames replayed: {rx_llc.replays_served + tx_llc.replays_served}, "
          f"timeout recoveries: {tx_llc.timeout_recoveries + rx_llc.timeout_recoveries}")
    print(f"cachelines corrupted after recovery: {corrupted} / {lines} "
          f"{'— exactly-once delivery holds' if corrupted == 0 else '!!'}")


def backpressure_demo() -> None:
    print("\n== 2. Credit backpressure with a 4-slot Rx queue ==")
    testbed = Testbed(llc_config=LlcConfig(rx_queue_slots=4))
    attachment = testbed.attach("node0", 1 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)

    def burst():
        stores = [
            testbed.node0.bus.store(
                window.start + i * CACHELINE_BYTES,
                bytes([i]) * CACHELINE_BYTES,
            )
            for i in range(32)
        ]
        yield testbed.sim.all_of(stores)

    testbed.sim.run_process(burst())
    llc = testbed.node0.device.llcs[0]
    print(f"32 concurrent stores over 4 credits: "
          f"stalls at the credit pool: {llc._credits.stall_count}, "
          f"credits now: {llc.credits_available}/4")
    print("every transaction still completed — backpressure, not loss")


def rest_security_demo() -> None:
    print("\n== 3. REST control plane + access control ==")
    testbed = Testbed()
    api = RestApi(testbed.plane)

    status, body = api.handle("POST", "/v1/attachments",
                              {"compute_host": "node0", "size": 1 * MIB})
    print(f"POST /v1/attachments without a token  -> {status} "
          f"[{body['code']}] {body['error']}")

    viewer = testbed.plane.acl.issue_token(Role.VIEWER)
    status, body = api.handle("POST", "/v1/attachments",
                              {"compute_host": "node0", "size": 1 * MIB},
                              token=viewer)
    print(f"POST as viewer                        -> {status} "
          f"[{body['code']}] {body['error']}")

    operator = testbed.plane.acl.issue_token(Role.OPERATOR)
    status, body = api.handle(
        "POST", "/v1/attachments",
        {"compute_host": "node0", "size": 1 * MIB, "bonded": True},
        token=operator,
    )
    print(f"POST as operator (bonded)             -> {status} "
          f"attachment #{body['id']} on channels {body['channels']}")

    status, body = api.handle("GET", "/v1/attachments", token=viewer)
    print(f"GET  as viewer                        -> {status} "
          f"({len(body['attachments'])} attachment(s))")

    status, _ = api.handle(
        "DELETE", f"/v1/attachments/{body['attachments'][0]['id']}",
        token=operator,
    )
    print(f"DELETE as operator                    -> {status}")


def rest_resilience_demo() -> None:
    print("\n== 4. REST resilience surface: /v1/health, /v1/faults ==")
    rack = RackTestbed(nodes=3, channels_per_node=2)
    attachment = rack.attach("node0", 2 * MIB, memory_host="node1")
    monitor = HealthMonitor(rack)
    monitor.watch(attachment)
    api = RestApi(rack.plane, monitor=monitor,
                  fault_hook=make_rest_fault_hook(rack))

    status, body = api.handle("GET", "/v1/health", token=rack.admin_token)
    print(f"GET  /v1/health          -> {status} status={body['status']} "
          f"({len(body['attachments'])} watched attachment(s))")

    status, body = api.handle(
        "POST", "/v1/faults",
        {"campaign": "link-flap",
         "attachment": attachment.attachment_id,
         "at_s": 1e-6, "duration_s": 5e-6},
        token=rack.admin_token,
    )
    print(f"POST /v1/faults          -> {status} injected "
          f"{body['injected']!r} against {body['target_host']} "
          f"({len(body['links'])} links in the fault domain)")

    status, body = api.handle(
        "POST", "/v1/faults",
        {"campaign": "meteor-strike",
         "attachment": attachment.attachment_id},
        token=rack.admin_token,
    )
    print(f"POST (unknown campaign)  -> {status} [{body['code']}]")

    status, body = api.handle("GET", "/v1/health", token=None)
    print(f"GET  /v1/health no token -> {status} [{body['code']}]")


def failover_demo() -> None:
    print("\n== 5. Lender death and monitored failover ==")
    rack = RackTestbed(nodes=3, channels_per_node=2)
    attachment = rack.attach("node0", 1 * MIB, memory_host="node1")
    endpoint = rack.node("node0").device.compute
    endpoint.transaction_timeout_s = 20e-6
    endpoint.retry_policy = RetryPolicy(max_attempts=3)

    buffer = ResilientBuffer.attach_buffer(rack, attachment, size=64 * 1024)
    monitor = HealthMonitor(rack)
    monitor.watch(attachment, buffer=buffer)

    payload = bytes(range(256)) * 256  # 64 KiB
    buffer.write(0, payload[: 32 * 1024])
    print(f"wrote 32 KiB to the node1-backed buffer "
          f"(journal holds {buffer.journal.dirty_bytes} dirty bytes)")

    LinkKill(at_s=5e-6).arm(
        rack.sim,
        [ensure_injector(link) for link in rack.links_of("node1")],
    )
    print("armed link-kill campaign on node1's fault domain...")

    try:
        buffer.write(32 * 1024, payload[32 * 1024:])
        raise SystemExit("link kill never fired?!")
    except RemoteMemoryError as error:
        print(f"write failed as expected: [{error.code}] after "
              f"{error.details['attempts']} attempts")

    report = monitor.failover(attachment.attachment_id)
    print(f"failover: attachment #{report.old_attachment_id} "
          f"({report.old_memory_host}) -> "
          f"#{report.new_attachment.attachment_id} "
          f"({report.new_memory_host}) in "
          f"{report.recovery_time_s * 1e6:.1f} us, "
          f"{report.replayed_bytes} bytes replayed from the journal")

    buffer.write(32 * 1024, payload[32 * 1024:])
    survived = buffer.read(0, len(payload)) == payload
    print(f"post-failover contents byte-identical: {survived}")


def chaos_cli_demo() -> None:
    print("\n== 6. Chaos CLI: two seeded runs, byte-identical ==")
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory() as tmp:
        blobs = []
        for run in ("a", "b"):
            out = os.path.join(tmp, run)
            result = subprocess.run(
                [sys.executable, "-m", "repro", "chaos",
                 "link-kill-failover", "--seed", "7", "--out", out],
                capture_output=True, text=True, env=env, timeout=240,
            )
            if result.returncode != 0:
                raise SystemExit(f"chaos CLI failed:\n{result.stderr}")
            print("  " + result.stdout.strip().splitlines()[0])
            path = os.path.join(out, "chaos-link-kill-failover.json")
            with open(path) as handle:
                blobs.append(handle.read())
        identical = blobs[0] == blobs[1]
        metrics = len(json.loads(blobs[0])["metrics"])
        print(f"artifacts byte-identical across runs: {identical} "
              f"({metrics} metrics diffed)")


def main() -> None:
    lossy_link_demo()
    backpressure_demo()
    rest_security_demo()
    rest_resilience_demo()
    failover_demo()
    chaos_cli_demo()


if __name__ == "__main__":
    main()
