"""REST-style system access interface — paper §IV-C.

"The various remote memory allocation/deallocation interactions occur
via a REST API." This module shapes the orchestrator as an HTTP-ish
request handler (method, path, body, bearer token) → (status, body)
without binding a socket, so tests and examples drive the exact same
surface an administrator or a cloud-orchestration plugin would.
"""

from __future__ import annotations

import re
from typing import Dict, Optional, Tuple

from ..mem.address import AddressError
from .graph import GraphError
from .orchestrator import ControlPlane, OrchestrationError
from .planner import NoPathError
from .security import AuthError

__all__ = ["RestApi"]

_ATTACHMENT_PATH = re.compile(r"^/v1/attachments/(\d+)$")


class RestApi:
    """In-process REST facade over :class:`ControlPlane`.

    Routes::

        GET    /v1/state
        GET    /v1/attachments
        POST   /v1/attachments    {"compute_host", "size",
                                   ["memory_host"], ["bonded"]}
        GET    /v1/attachments/<id>
        DELETE /v1/attachments/<id>
    """

    def __init__(self, plane: ControlPlane):
        self.plane = plane

    def handle(
        self,
        method: str,
        path: str,
        body: Optional[Dict] = None,
        token: Optional[str] = None,
    ) -> Tuple[int, Dict]:
        """Dispatch one request; returns (status code, response body)."""
        try:
            return self._route(method.upper(), path, body or {}, token)
        except AuthError as exc:
            return 401, {"error": str(exc)}
        except (NoPathError, GraphError) as exc:
            return 409, {"error": str(exc)}
        except OrchestrationError as exc:
            message = str(exc)
            status = 404 if "unknown attachment" in message else 409
            return status, {"error": message}
        except (AddressError, MemoryError, ValueError, KeyError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}

    # -- routing -------------------------------------------------------------------
    def _route(
        self, method: str, path: str, body: Dict, token: Optional[str]
    ) -> Tuple[int, Dict]:
        if path == "/v1/state" and method == "GET":
            return 200, {"state": self.plane.system_state(token=token)}

        if path == "/v1/attachments":
            if method == "GET":
                return 200, {
                    "attachments": [
                        a.describe() for a in self.plane.attachments(token=token)
                    ]
                }
            if method == "POST":
                return self._create(body, token)
            return 405, {"error": f"{method} not allowed on {path}"}

        match = _ATTACHMENT_PATH.match(path)
        if match:
            attachment_id = int(match.group(1))
            if method == "GET":
                attachment = self.plane.attachment(attachment_id, token=token)
                return 200, attachment.describe()
            if method == "DELETE":
                self.plane.detach(attachment_id, token=token)
                return 204, {}
            return 405, {"error": f"{method} not allowed on {path}"}

        return 404, {"error": f"no route for {method} {path}"}

    def _create(self, body: Dict, token: Optional[str]) -> Tuple[int, Dict]:
        try:
            compute_host = body["compute_host"]
            size = int(body["size"])
        except KeyError as exc:
            return 400, {"error": f"missing field {exc}"}
        if size <= 0:
            return 400, {"error": f"size must be > 0, got {size}"}
        attachment = self.plane.attach(
            compute_host,
            size,
            memory_host=body.get("memory_host"),
            bonded=bool(body.get("bonded", False)),
            token=token,
        )
        return 201, attachment.describe()
