"""Resilience subsystem: journal, campaigns, failover scenarios."""

import json

import pytest

from repro.errors import RemoteMemoryError
from repro.resilience import (
    Brownout,
    LinkFlap,
    LinkKill,
    ResilientBuffer,
    UnknownCampaignError,
    WriteJournal,
    ensure_injector,
    make_campaign,
    run_scenario,
)
from repro.resilience.scenarios import _build_rack
from repro.testbed import RackTestbed


class TestWriteJournal:
    def test_records_and_replays(self):
        journal = WriteJournal(64)
        journal.record(0, b"abcd")
        journal.record(10, b"xyz")
        plan = list(journal.replay_plan())
        assert plan == [(0, b"abcd"), (10, b"xyz")]
        assert journal.dirty_bytes == 7

    def test_overlapping_writes_merge(self):
        journal = WriteJournal(64)
        journal.record(0, b"aaaa")
        journal.record(2, b"bbbb")
        journal.record(6, b"cc")  # touching: [2,6) then [6,8)
        assert journal.intervals() == [(0, 8)]
        assert list(journal.replay_plan()) == [(0, b"aabbbbcc")]

    def test_last_write_wins(self):
        journal = WriteJournal(16)
        journal.record(0, b"oldoldold")
        journal.record(3, b"NEW")
        assert list(journal.replay_plan()) == [(0, b"oldNEWold")]

    def test_disjoint_intervals_stay_separate(self):
        journal = WriteJournal(100)
        journal.record(50, b"z")
        journal.record(0, b"a")
        assert journal.intervals() == [(0, 1), (50, 51)]

    def test_bounds_checked(self):
        journal = WriteJournal(8)
        with pytest.raises(ValueError):
            journal.record(6, b"toolong")
        with pytest.raises(ValueError):
            journal.record(-1, b"x")


class TestCampaigns:
    def test_catalogue_round_trip(self):
        campaign = make_campaign("link-flap", at_s=1e-6,
                                 duration_s=2e-6)
        assert isinstance(campaign, LinkFlap)
        assert campaign.describe()["duration_s"] == 2e-6

    def test_unknown_campaign(self):
        with pytest.raises(UnknownCampaignError) as info:
            make_campaign("meteor-strike")
        assert info.value.code == "resilience/unknown-campaign"

    def test_bad_params_rejected(self):
        with pytest.raises(UnknownCampaignError):
            make_campaign("link-kill", wavelength_nm=1550)

    def test_link_kill_arms_through_sim_clock(self):
        rack = RackTestbed(nodes=2, channels_per_node=1)
        injectors = [
            ensure_injector(link) for link in rack.links_of("node1")
        ]
        LinkKill(at_s=5e-6).arm(rack.sim, injectors)
        assert not any(i.down for i in injectors)
        rack.sim.run(until=10e-6)
        assert all(i.down for i in injectors)

    def test_brownout_restores_previous_probability(self):
        rack = RackTestbed(nodes=2, channels_per_node=1)
        injector = ensure_injector(rack.links_of("node1")[0])
        Brownout(at_s=0.0, duration_s=5e-6,
                 drop_probability=0.5).arm(rack.sim, [injector])
        rack.sim.run(until=1e-6)
        assert injector.drop_probability == 0.5
        rack.sim.run(until=10e-6)
        assert injector.drop_probability == 0.0

    def test_ensure_injector_is_idempotent(self):
        rack = RackTestbed(nodes=2, channels_per_node=1)
        link = rack.links_of("node0")[0]
        first = ensure_injector(link)
        assert ensure_injector(link) is first


class TestResilientBuffer:
    def test_quarantined_buffer_refuses_io(self):
        rack = RackTestbed(nodes=2, channels_per_node=1)
        attachment = rack.attach("node0", 1 << 21, memory_host="node1")
        buffer = ResilientBuffer.attach_buffer(rack, attachment,
                                               size=4096)
        buffer.write(0, b"live")
        buffer.quarantine()
        with pytest.raises(RemoteMemoryError) as info:
            buffer.write(0, b"dead")
        assert info.value.code == "memory/quarantined"
        with pytest.raises(RemoteMemoryError):
            buffer.read(0, 4)
        buffer.quarantine()  # idempotent


class TestLinkKillFailover:
    """The acceptance-criteria scenario (§ISSUE): seeded link kill."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("link-kill-failover", seed=7)

    def test_buffer_bytes_identical_after_failover(self, result):
        assert result["verified"] is True

    def test_failed_over_to_surviving_lender(self, result):
        report = result["report"]
        assert report["old_memory_host"] == "node1"
        assert report["new_memory_host"] == "node2"
        assert report["replayed_bytes"] > 0

    def test_recovery_time_bounded(self, result):
        # From the metrics registry: detection + detach + re-plan +
        # re-attach + replay must land within one millisecond of sim
        # time (measured ~100 us).
        recovery = result["metrics"][
            "health.last_recovery_time_s{component=health}"
        ]
        assert 0.0 < recovery < 1e-3
        assert recovery == result["report"]["recovery_time_s"]

    def test_no_hung_processes(self, result):
        # The post-failover drain ran to queue exhaustion without
        # tripping the engine's max_events guard.
        assert result["drained_at_s"] >= result["report"][
            "recovery_time_s"
        ]

    def test_health_metrics_recorded(self, result):
        metrics = result["metrics"]
        assert metrics["health.failovers{component=health}"] == 1
        assert (
            metrics["health.failures_observed{component=health}"] >= 1
        )
        assert result["health"]["status"] == "ok"

    def test_identical_seed_identical_snapshot(self, result):
        again = run_scenario("link-kill-failover", seed=7)
        assert json.dumps(again, sort_keys=True) == json.dumps(
            result, sort_keys=True
        )


class TestNonFatalScenarios:
    def test_link_flap_rides_out_on_retries(self):
        result = run_scenario("link-flap", seed=7)
        assert result["verified"] is True
        assert result["failovers"] == 0
        assert result["endpoint_retries"] > 0

    def test_brownout_absorbed_by_replay(self):
        result = run_scenario("brownout", seed=7)
        assert result["verified"] is True
        assert result["failovers"] == 0
        assert result["frames_dropped"] > 0

    def test_unknown_scenario_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_scenario("disk-fire", seed=1)


class TestEndpointRetryPath:
    def test_retries_use_fresh_txn_ids(self):
        """A retried transaction must not collide with its late replay."""
        rack, attachment, buffer, monitor, registry = _build_rack(3)
        endpoint = rack.node("node0").device.compute
        LinkFlap(at_s=2e-6, duration_s=50e-6).arm(
            rack.sim,
            [ensure_injector(l) for l in rack.links_of("node1")],
        )
        data = bytes(range(256)) * 64
        buffer.write(0, data)
        assert buffer.read(0, len(data)) == data
        assert endpoint.retries > 0
        # Retry bookkeeping: every retry burst was first a timeout.
        assert endpoint.timeouts >= endpoint.retries
        assert endpoint.retries_exhausted == 0
