"""Content-addressed on-disk result cache for sweep runs.

Layout: one JSON file per result at ``<root>/<sha256>.json`` where the
name is the spec's :attr:`~repro.sweep.RunSpec.key`. The key already
commits to the target, kwargs, seed and source fingerprint, so
invalidation is automatic — editing any ``repro/**/*.py`` file changes
every key and old entries are simply never read again. ``prune()``
deletes entries whose recorded fingerprint no longer matches the
current tree.

The default root is ``benchmarks/results/cache/`` at the repository
root (override with the ``REPRO_SWEEP_CACHE`` environment variable or
the ``root`` argument). Writes are atomic (temp file + ``os.replace``)
so parallel writers and readers never observe torn JSON.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from .spec import RunSpec

__all__ = ["ResultCache", "default_cache_dir"]

#: repo root = src/repro/sweep/cache.py -> four levels up.
_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
)


def default_cache_dir() -> str:
    override = os.environ.get("REPRO_SWEEP_CACHE")
    if override:
        return override
    return os.path.join(_REPO_ROOT, "benchmarks", "results", "cache")


class ResultCache:
    """sha256-addressed store of JSON-serializable sweep results."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    # -- read side -------------------------------------------------------------
    def get(self, spec: RunSpec) -> Optional[Dict[str, Any]]:
        """The stored envelope for ``spec``, or ``None`` on a miss.

        Unreadable or mismatching entries (corrupt JSON, a key
        collision that disagrees on the fingerprint) count as misses.
        """
        path = self._path(spec.key)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            envelope.get("fingerprint") != spec.fingerprint
            or envelope.get("target") != spec.target
        ):
            self.misses += 1
            return None
        self.hits += 1
        return envelope

    # -- write side ------------------------------------------------------------
    def put(self, spec: RunSpec, result: Any, elapsed_s: float) -> str:
        """Persist one result atomically; returns the file path."""
        os.makedirs(self.root, exist_ok=True)
        envelope = {
            "key": spec.key,
            "target": spec.target,
            "kwargs": spec.kwargs,
            "seed": spec.seed,
            "fingerprint": spec.fingerprint,
            "elapsed_s": round(elapsed_s, 6),
            "result": result,
        }
        path = self._path(spec.key)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- maintenance -----------------------------------------------------------
    def entries(self) -> List[str]:
        """Keys of every entry currently on disk."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        return sorted(
            name[: -len(".json")]
            for name in names
            if name.endswith(".json") and not name.startswith(".")
        )

    def prune(self, keep_fingerprint: str) -> int:
        """Delete entries not produced by ``keep_fingerprint``."""
        removed = 0
        for key in self.entries():
            path = self._path(key)
            try:
                with open(path) as handle:
                    envelope = json.load(handle)
                stale = envelope.get("fingerprint") != keep_fingerprint
            except (OSError, ValueError):
                stale = True
            if stale:
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        return removed

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for key in self.entries():
            try:
                os.unlink(self._path(key))
                removed += 1
            except OSError:
                pass
        return removed

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ResultCache({self.root!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )
