#!/usr/bin/env python3
"""Reliability and security: lossy links, replay, and the REST plane.

Demonstrates the parts of the stack the headline numbers take for
granted:

1. the LLC's frame-replay protocol keeping a lossy 100 Gb/s channel
   *functionally perfect* (every cacheline survives);
2. credit backpressure under a tiny receive queue;
3. the control plane's REST interface and token security.

Run:  python examples/failure_injection.py
"""

from repro.control import RestApi, Role
from repro.core import LlcConfig
from repro.mem import CACHELINE_BYTES, MIB
from repro.net import FaultInjector
from repro.testbed import Testbed


def lossy_link_demo() -> None:
    print("== 1. Frame replay on a lossy link ==")
    faults = FaultInjector(drop_probability=0.03, corrupt_probability=0.03)
    testbed = Testbed(fault_injectors={0: faults})
    attachment = testbed.attach("node0", 2 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)

    lines = 64
    for index in range(lines):
        testbed.node0.run_store(
            window.start + index * CACHELINE_BYTES,
            bytes([index + 1]) * CACHELINE_BYTES,
        )
    corrupted = 0
    for index in range(lines):
        data = testbed.node0.run_load(window.start + index * CACHELINE_BYTES)
        if data != bytes([index + 1]) * CACHELINE_BYTES:
            corrupted += 1
    tx_llc = testbed.node0.device.llcs[0]
    rx_llc = testbed.node1.device.llcs[0]
    print(f"frames dropped/corrupted by the wire: {faults.frames_dropped}"
          f"/{faults.frames_corrupted}")
    print(f"replay requests: {rx_llc.replays_requested + tx_llc.replays_requested}, "
          f"frames replayed: {rx_llc.replays_served + tx_llc.replays_served}, "
          f"timeout recoveries: {tx_llc.timeout_recoveries + rx_llc.timeout_recoveries}")
    print(f"cachelines corrupted after recovery: {corrupted} / {lines} "
          f"{'— exactly-once delivery holds' if corrupted == 0 else '!!'}")


def backpressure_demo() -> None:
    print("\n== 2. Credit backpressure with a 4-slot Rx queue ==")
    testbed = Testbed(llc_config=LlcConfig(rx_queue_slots=4))
    attachment = testbed.attach("node0", 1 * MIB, memory_host="node1")
    window = testbed.remote_window_range(attachment)

    def burst():
        stores = [
            testbed.node0.bus.store(
                window.start + i * CACHELINE_BYTES,
                bytes([i]) * CACHELINE_BYTES,
            )
            for i in range(32)
        ]
        yield testbed.sim.all_of(stores)

    testbed.sim.run_process(burst())
    llc = testbed.node0.device.llcs[0]
    print(f"32 concurrent stores over 4 credits: "
          f"stalls at the credit pool: {llc._credits.stall_count}, "
          f"credits now: {llc.credits_available}/4")
    print("every transaction still completed — backpressure, not loss")


def rest_security_demo() -> None:
    print("\n== 3. REST control plane + access control ==")
    testbed = Testbed()
    api = RestApi(testbed.plane)

    status, body = api.handle("POST", "/v1/attachments",
                              {"compute_host": "node0", "size": 1 * MIB})
    print(f"POST /v1/attachments without a token  -> {status} "
          f"({body['error']})")

    viewer = testbed.plane.acl.issue_token(Role.VIEWER)
    status, body = api.handle("POST", "/v1/attachments",
                              {"compute_host": "node0", "size": 1 * MIB},
                              token=viewer)
    print(f"POST as viewer                        -> {status} "
          f"({body['error']})")

    operator = testbed.plane.acl.issue_token(Role.OPERATOR)
    status, body = api.handle(
        "POST", "/v1/attachments",
        {"compute_host": "node0", "size": 1 * MIB, "bonded": True},
        token=operator,
    )
    print(f"POST as operator (bonded)             -> {status} "
          f"attachment #{body['id']} on channels {body['channels']}")

    status, body = api.handle("GET", "/v1/attachments", token=viewer)
    print(f"GET  as viewer                        -> {status} "
          f"({len(body['attachments'])} attachment(s))")

    status, _ = api.handle(
        "DELETE", f"/v1/attachments/{body['attachments'][0]['id']}",
        token=operator,
    )
    print(f"DELETE as operator                    -> {status}")


def main() -> None:
    lossy_link_demo()
    backpressure_demo()
    rest_security_demo()


if __name__ == "__main__":
    main()
