"""Tests for RemoteBuffer — the user-facing disaggregated-memory API."""

import pytest

from repro.mem import AddressError, MIB
from repro.osmodel import PagePolicy
from repro.testbed import RemoteBuffer, Testbed


@pytest.fixture()
def attached():
    testbed = Testbed()
    attachment = testbed.attach("node0", 4 * MIB, memory_host="node1")
    return testbed, attachment


class TestRemoteBuffer:
    def test_local_buffer_roundtrip(self, attached):
        testbed, _attachment = attached
        buffer = RemoteBuffer.allocate(testbed.node0, 256 * 1024)
        buffer.write(0, b"local bytes")
        assert buffer.read(0, 11) == b"local bytes"
        buffer.free()

    def test_remote_buffer_lands_on_donor(self, attached):
        testbed, attachment = attached
        buffer = RemoteBuffer.allocate(
            testbed.node0,
            256 * 1024,
            policy=PagePolicy.BIND,
            numa_nodes=[attachment.plan.numa_node_id],
        )
        buffer.write(0, b"over the wire")
        assert buffer.read(0, 13) == b"over the wire"
        # The donor actually holds the bytes: the buffer's first page is
        # inside the TF window, whose offset maps into the pinned range.
        page = buffer.mapping.pages[0]
        window = testbed.node0.tf_window
        donor_address = (
            attachment.grant.effective_base
            + (page.address - window.start)
            - attachment.plan.section_indices[0]
            * testbed.node0.spec.section_bytes
        )
        assert testbed.node1.dram.read_now(donor_address, 13) == b"over the wire"
        buffer.free()

    def test_access_spanning_pages(self, attached):
        testbed, attachment = attached
        page = testbed.node0.spec.page_bytes
        buffer = RemoteBuffer.allocate(
            testbed.node0,
            4 * page,
            policy=PagePolicy.BIND,
            numa_nodes=[attachment.plan.numa_node_id],
        )
        blob = bytes(range(256)) * ((2 * page) // 256)
        buffer.write(page // 2, blob)  # straddles 2+ page boundaries
        assert buffer.read(page // 2, len(blob)) == blob
        buffer.free()

    def test_interleaved_buffer_spreads_pages(self, attached):
        testbed, attachment = attached
        buffer = RemoteBuffer.allocate(
            testbed.node0,
            8 * testbed.node0.spec.page_bytes,
            policy=PagePolicy.INTERLEAVE,
            numa_nodes=[0, attachment.plan.numa_node_id],
        )
        histogram = buffer.node_histogram()
        assert histogram[0] == 4
        assert histogram[attachment.plan.numa_node_id] == 4
        # Functional across the mix of local and remote pages.
        buffer.write(0, b"\x5a" * (2 * testbed.node0.spec.page_bytes))
        assert buffer.read(0, 4) == b"\x5a" * 4
        buffer.free()

    def test_slice_sugar(self, attached):
        testbed, _attachment = attached
        buffer = RemoteBuffer.allocate(testbed.node0, 64 * 1024)
        buffer[100:110] = b"0123456789"
        assert buffer[100:110] == b"0123456789"
        assert len(buffer) == 64 * 1024
        buffer.free()

    def test_bounds_checked(self, attached):
        testbed, _attachment = attached
        buffer = RemoteBuffer.allocate(testbed.node0, 1024)
        with pytest.raises(AddressError):
            buffer.read(1000, 100)
        with pytest.raises(AddressError):
            buffer.write(-1, b"x")
        buffer.free()

    def test_use_after_free_rejected(self, attached):
        testbed, _attachment = attached
        buffer = RemoteBuffer.allocate(testbed.node0, 1024)
        buffer.free()
        with pytest.raises(AddressError):
            buffer.read(0, 1)
        buffer.free()  # idempotent

    def test_slice_size_mismatch_rejected(self, attached):
        testbed, _attachment = attached
        buffer = RemoteBuffer.allocate(testbed.node0, 1024)
        with pytest.raises(AddressError):
            buffer[0:4] = b"too long"
        buffer.free()


class TestMigrationPreservesContent:
    """NUMA migration must be invisible to applications: content moves."""

    def test_migrated_page_keeps_its_bytes(self, attached):
        from repro.osmodel import NumaBalancer

        testbed, attachment = attached
        remote_node = attachment.plan.numa_node_id
        buffer = RemoteBuffer.allocate(
            testbed.node0, 2 * testbed.node0.spec.page_bytes,
            policy=PagePolicy.BIND, numa_nodes=[remote_node],
        )
        blob = bytes(range(256)) * (testbed.node0.spec.page_bytes // 256)
        buffer.write(0, blob)
        balancer = NumaBalancer(testbed.node0.kernel, sample_period=1,
                                min_samples=2)
        for _ in range(6):
            balancer.record_access(buffer.mapping, 0, cpu_node=0)
        assert balancer.balance(buffer.mapping) == 1
        assert buffer.mapping.pages[0].node_id == 0  # now local
        assert buffer.read(0, len(blob)) == blob     # content intact
        buffer.free()

    def test_local_to_local_migration_also_copies(self, attached):
        testbed, _attachment = attached
        kernel = testbed.node0.kernel
        mapping = kernel.mmap(testbed.node0.spec.page_bytes)
        source_address = mapping.pages[0].address
        testbed.node0.run_store(source_address, b"\x7e" * 128)
        # Force a move within node 0 via the allocator (same-node moves
        # are normally no-ops through migrate_page, so emulate a target).
        # Instead verify the copier contract directly:
        destination = kernel.mmap(testbed.node0.spec.page_bytes)
        kernel.page_copier(
            source_address,
            destination.pages[0].address,
            testbed.node0.spec.page_bytes,
        )
        assert testbed.node0.run_load(
            destination.pages[0].address
        ) == b"\x7e" * 128
        kernel.munmap(mapping)
        kernel.munmap(destination)


class TestRemoteBufferFuzz:
    def test_random_writes_match_reference_buffer(self, attached):
        """RemoteBuffer over remote pages must behave exactly like one
        flat bytearray, whatever the offsets do at page boundaries."""
        from repro.sim import SeededRNG

        testbed, attachment = attached
        page = testbed.node0.spec.page_bytes
        size = 3 * page
        buffer = RemoteBuffer.allocate(
            testbed.node0, size,
            policy=PagePolicy.INTERLEAVE,
            numa_nodes=[0, attachment.plan.numa_node_id],
        )
        reference = bytearray(size)
        rng = SeededRNG(99)
        for step in range(12):
            offset = rng.randint(0, size - 1)
            length = rng.randint(1, min(size - offset, page + 512))
            blob = bytes([rng.randint(0, 255)]) * length
            buffer.write(offset, blob)
            reference[offset:offset + length] = blob
        assert buffer.read(0, size) == bytes(reference)
        buffer.free()
