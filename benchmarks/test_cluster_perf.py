"""Perf harness for the sharded rack-domain cluster replay.

Measures the same trace replay (4 rack domains, live control-plane
traffic, conservative sync) serially and fanned out over domain worker
processes, and records the scaling curve in ``BENCH_cluster.json`` at
the repository root.

Correctness comes first: every parallel run's artifact must be
**byte-identical** to the serial artifact (the sharded simulator's
headline invariant) — a speedup over a diverged simulation would be
meaningless.

Set ``CLUSTER_PERF_SMOKE=1`` for a CI-sized run with a relaxed >=1.2x
floor at 2 workers. The full run asserts the ISSUE target: >=2.5x at 4
domain workers on a >=4-CPU host. Like the sweep benchmark, the
harness never oversubscribes — it fans out with ``min(4, cpus)``
workers, and on smaller hosts the assertion degrades to an
engine-overhead bound while the measured curve (and the CPU count) is
still recorded.
"""

from __future__ import annotations

import json
import os
import time

from repro.cluster import ClusterConfig, run_cluster

SMOKE = os.environ.get("CLUSTER_PERF_SMOKE", "") not in ("", "0")

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_cluster.json",
)

CPUS = os.cpu_count() or 1
JOBS = min(4, CPUS)

CONFIG = ClusterConfig(
    racks=4,
    machines=48 if SMOKE else 100,
    tasks=3_000 if SMOKE else 12_000,
    seed=17,
)

# Required speedup at the widest fan-out measured. The 2.5x ISSUE
# target presumes 4 truly concurrent workers; smaller hosts bound the
# coordinator + pool-dispatch overhead instead.
if JOBS >= 4:
    TARGET = 1.2 if SMOKE else 2.5
elif JOBS > 1:
    TARGET = 1.05 if SMOKE else 1.2
else:
    TARGET = 0.8


def _canonical(artifact):
    return json.dumps(artifact, sort_keys=True)


def test_cluster_scaling_curve():
    job_counts = sorted({1, min(2, JOBS), JOBS})

    curve = []
    reference = None
    serial_artifact = None
    for jobs in job_counts:
        started = time.perf_counter()
        artifact, runtime = run_cluster(CONFIG, jobs=jobs)
        elapsed = time.perf_counter() - started
        text = _canonical(artifact)
        if reference is None:
            reference = text
            serial_artifact = artifact
        else:
            # Byte-identical across every job count, or the curve is
            # comparing different simulations.
            assert text == reference, f"jobs={jobs} diverged from serial"
        curve.append({
            "jobs": jobs,
            "wall_s": round(elapsed, 4),
            "busy_s": round(runtime["busy_s"], 4),
        })

    serial_s = curve[0]["wall_s"]
    for point in curve:
        point["speedup"] = round(serial_s / point["wall_s"], 3)
    speedup = curve[-1]["speedup"]

    artifact = serial_artifact
    print(
        f"cluster replay ({CONFIG.racks} racks, {CONFIG.machines} "
        f"machines, {artifact['summary']['tasks']} tasks, "
        f"{artifact['rounds']} windows, {CPUS} CPUs): "
        + ", ".join(
            f"x{p['jobs']} {p['wall_s']:.2f}s ({p['speedup']:.2f}x)"
            for p in curve
        )
    )

    report = {
        "config": CONFIG.describe(),
        "cpus": CPUS,
        "smoke": SMOKE,
        "rounds": artifact["rounds"],
        "messages": artifact["messages"],
        "tasks": artifact["summary"]["tasks"],
        "curve": curve,
        "speedup": speedup,
        "target": TARGET,
    }
    with open(RESULTS_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert speedup >= TARGET, (
        f"cluster replay at {job_counts[-1]} workers: {speedup:.2f}x < "
        f"{TARGET}x target"
    )
