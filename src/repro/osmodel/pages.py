"""Page-frame allocation with NUMA policies.

Models the slice of the Linux memory manager the evaluation exercises:
per-node free lists fed by online sections, and the mempolicy modes the
paper's configurations map to —

* ``local``  → all allocations from the CPU's node (the *local* and
  *single/bonding-disaggregated* configs, which bind to one node),
* ``interleave`` → round-robin across a node set ("the Linux kernel is
  alternating on a 50/50 basis pages from the two NUMA nodes", §VI-C),
* ``preferred`` → try one node, fall back by distance,
* ``bind`` → restricted node set, allocation fails when exhausted.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from ..mem.address import AddressError, AddressRange

__all__ = ["PagePolicy", "Page", "PageAllocator", "OutOfMemory"]

#: ppc64 kernels use 64 KiB base pages.
DEFAULT_PAGE_BYTES = 64 * 1024


class OutOfMemory(MemoryError):
    """Allocation could not be satisfied under the active policy."""


class PagePolicy(enum.Enum):
    LOCAL = "local"
    INTERLEAVE = "interleave"
    PREFERRED = "preferred"
    BIND = "bind"


@dataclass(frozen=True)
class Page:
    """One allocated page frame."""

    pfn: int
    address: int
    node_id: int
    page_bytes: int

    @property
    def range(self) -> AddressRange:
        return AddressRange(self.address, self.page_bytes)


class PageAllocator:
    """Per-node free lists over section-backed physical ranges."""

    def __init__(self, page_bytes: int = DEFAULT_PAGE_BYTES):
        if page_bytes <= 0 or (page_bytes & (page_bytes - 1)) != 0:
            raise AddressError(
                f"page_bytes must be a power of two: {page_bytes}"
            )
        self.page_bytes = page_bytes
        self._free: Dict[int, Deque[int]] = {}
        self._allocated: Dict[int, set] = {}
        self._interleave_next = 0
        self.allocated_pages: Dict[int, int] = {}
        self._pinned_runs: Dict[int, tuple] = {}

    # -- feeding the allocator ------------------------------------------------------
    def add_range(self, node_id: int, physical: AddressRange) -> int:
        """Online a physical range into a node; returns pages added."""
        if physical.size % self.page_bytes:
            raise AddressError(
                f"range size {physical.size:#x} not a multiple of the "
                f"{self.page_bytes:#x}-byte page size"
            )
        free = self._free.setdefault(node_id, deque())
        first_pfn = physical.start // self.page_bytes
        count = physical.size // self.page_bytes
        for pfn in range(first_pfn, first_pfn + count):
            free.append(pfn)
        self.allocated_pages.setdefault(node_id, 0)
        return count

    def drain_range(self, node_id: int, physical: AddressRange) -> List[int]:
        """Pull every *free* page in the range off the free list.

        Used when offlining sections; returns the PFNs captured. Pages
        still allocated inside the range must be migrated first — the
        caller (hotplug) is responsible for that ordering.
        """
        free = self._free.get(node_id, deque())
        captured, kept = [], deque()
        for pfn in free:
            if physical.contains(pfn * self.page_bytes):
                captured.append(pfn)
            else:
                kept.append(pfn)
        self._free[node_id] = kept
        return captured

    # -- allocation -------------------------------------------------------------------
    def allocate(
        self,
        count: int,
        policy: PagePolicy = PagePolicy.LOCAL,
        nodes: Optional[Sequence[int]] = None,
        fallback_order: Optional[Sequence[int]] = None,
    ) -> List[Page]:
        """Allocate ``count`` pages under ``policy``.

        ``nodes`` is the policy node set (the local node for LOCAL, the
        interleave set for INTERLEAVE, the preferred node first for
        PREFERRED, the binding for BIND). ``fallback_order`` lists other
        nodes to try, nearest first, for LOCAL/PREFERRED.
        """
        if count < 0:
            raise AddressError(f"negative page count: {count}")
        if not nodes:
            raise AddressError("policy needs at least one node")
        pages: List[Page] = []
        try:
            if policy is PagePolicy.INTERLEAVE:
                for i in range(count):
                    pages.append(self._take_interleaved(nodes))
            elif policy is PagePolicy.BIND:
                for _ in range(count):
                    pages.append(self._take_first_available(nodes))
            else:  # LOCAL and PREFERRED share try-then-fallback shape
                order = list(nodes) + list(fallback_order or [])
                for _ in range(count):
                    pages.append(self._take_first_available(order))
        except OutOfMemory:
            self.free(pages)
            raise
        return pages

    def free(self, pages: Sequence[Page]) -> None:
        for page in pages:
            self._free.setdefault(page.node_id, deque()).appendleft(page.pfn)
            self._allocated.get(page.node_id, set()).discard(page.pfn)
            self.allocated_pages[page.node_id] -= 1

    # -- internals ------------------------------------------------------------------
    def _take_interleaved(self, nodes: Sequence[int]) -> Page:
        attempts = len(nodes)
        while attempts:
            node = nodes[self._interleave_next % len(nodes)]
            self._interleave_next += 1
            page = self._try_take(node)
            if page is not None:
                return page
            attempts -= 1
        raise OutOfMemory(f"interleave set {list(nodes)} exhausted")

    def _take_first_available(self, order: Sequence[int]) -> Page:
        for node in order:
            page = self._try_take(node)
            if page is not None:
                return page
        raise OutOfMemory(f"nodes {list(order)} exhausted")

    def _try_take(self, node_id: int) -> Optional[Page]:
        free = self._free.get(node_id)
        if not free:
            return None
        pfn = free.popleft()
        self.allocated_pages[node_id] = self.allocated_pages.get(node_id, 0) + 1
        self._allocated.setdefault(node_id, set()).add(pfn)
        return Page(
            pfn=pfn,
            address=pfn * self.page_bytes,
            node_id=node_id,
            page_bytes=self.page_bytes,
        )

    # -- migration support ------------------------------------------------------------
    def move_page(self, page: Page, target_node: int) -> Optional[Page]:
        """Allocate a frame on ``target_node`` and retire ``page``.

        Returns the replacement page, or None when the target is full
        (the kernel keeps the page where it is in that case). The caller
        copies content and updates its own mappings.
        """
        replacement = self._try_take(target_node)
        if replacement is None:
            return None
        self.free([page])
        return replacement

    # -- contiguous pinning (donor-side memory stealing) --------------------------------
    def take_contiguous(self, node_id: int, count: int) -> AddressRange:
        """Carve a run of ``count`` consecutive free frames off a node.

        Returns the pinned physical range; raises :class:`OutOfMemory`
        when no sufficiently long run exists (fragmentation).
        """
        if count < 1:
            raise AddressError(f"count must be >= 1: {count}")
        free = self._free.get(node_id)
        if not free or len(free) < count:
            raise OutOfMemory(
                f"node {node_id}: {0 if not free else len(free)} free pages, "
                f"need {count} contiguous"
            )
        ordered = sorted(free)
        run_start = 0
        for i in range(1, len(ordered) + 1):
            if i == len(ordered) or ordered[i] != ordered[i - 1] + 1:
                if i - run_start >= count:
                    chosen = set(ordered[run_start : run_start + count])
                    self._free[node_id] = deque(
                        pfn for pfn in free if pfn not in chosen
                    )
                    allocated = self._allocated.setdefault(node_id, set())
                    allocated.update(chosen)
                    self.allocated_pages[node_id] = (
                        self.allocated_pages.get(node_id, 0) + count
                    )
                    base = ordered[run_start]
                    self._pinned_runs[base] = (node_id, count)
                    return AddressRange(
                        base * self.page_bytes, count * self.page_bytes
                    )
                run_start = i
        raise OutOfMemory(
            f"node {node_id}: no contiguous run of {count} pages"
        )

    def release_contiguous(self, pinned: AddressRange) -> None:
        base = pinned.start // self.page_bytes
        try:
            node_id, count = self._pinned_runs.pop(base)
        except KeyError:
            raise AddressError(f"range {pinned!r} was not pinned") from None
        free = self._free.setdefault(node_id, deque())
        allocated = self._allocated.setdefault(node_id, set())
        for pfn in range(base, base + count):
            allocated.discard(pfn)
            free.append(pfn)
        self.allocated_pages[node_id] -= count

    # -- accounting -------------------------------------------------------------------
    def has_allocated_in(self, node_id: int, physical: AddressRange) -> bool:
        """True when any allocated frame lies inside ``physical``."""
        allocated = self._allocated.get(node_id, set())
        first = physical.start // self.page_bytes
        last = (physical.end - 1) // self.page_bytes
        if len(allocated) < (last - first + 1):
            return any(first <= pfn <= last for pfn in allocated)
        return any(pfn in allocated for pfn in range(first, last + 1))

    def free_pages(self, node_id: int) -> int:
        return len(self._free.get(node_id, ()))

    def nodes(self) -> List[int]:
        return sorted(self._free)
