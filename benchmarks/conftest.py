"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark prints the series the paper's figure plots (so running
``pytest benchmarks/ --benchmark-only -s`` regenerates the numbers) and
asserts the qualitative *shape* claims — who wins, by roughly what
factor — rather than exact values.

The figure drivers submit their compute through the sweep engine (see
:func:`sweep_payload`): each driver exposes a ``compute_payload``
function returning a JSON-serializable payload, and the engine fronts
it with the content-addressed result cache, so re-running the
benchmark suite against unchanged code replays instantly. Control it
with ``SWEEP_JOBS=N`` (worker processes) and ``SWEEP_NO_CACHE=1``
(force recomputation).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_results(name: str, payload: Dict) -> str:
    """Persist a figure's regenerated series under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence]) -> None:
    widths = [
        max(len(str(headers[i])), max((len(str(r[i])) for r in rows),
                                      default=0))
        for i in range(len(headers))
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def sweep_payload(test_file: str, function: str = "compute_payload",
                  **kwargs) -> Dict:
    """Submit one benchmark's compute function through the sweep engine.

    ``test_file`` is the calling module's ``__file__``; its basename
    becomes the ``py:<module>:<function>`` target (the module is
    already imported by pytest) and its contents join the cache
    fingerprint, so editing either the simulation stack or the
    benchmark itself invalidates the cached payload.
    """
    from repro.sweep import SweepEngine, make_spec, resolve_jobs

    module = os.path.splitext(os.path.basename(test_file))[0]
    spec = make_spec(
        f"py:{module}:{function}", extra_files=[test_file], **kwargs
    )
    engine = SweepEngine(
        jobs=resolve_jobs(),
        cache=os.environ.get("SWEEP_NO_CACHE", "") in ("", "0"),
    )
    [outcome] = engine.run([spec])
    return outcome.value


@pytest.fixture()
def once(benchmark):
    """Run the benchmarked callable exactly once (expensive targets)."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
