"""The ThymesisFlow card: RMMU + routing + per-channel LLCs + endpoints.

One device instance models one Alpha Data 9V3 FPGA running the
ThymesisFlow design (§V): it terminates the OpenCAPI host link (M1
and/or C1 mode), owns two independent 100 Gbit/s network channels, and
exposes its configuration space as MMIO for the user-space agent.

Both roles can be active on the same card at once — a node can donate
memory to one neighbour while borrowing from another — which is why the
routing layer dispatches ingress by transaction type: requests go to the
memory-stealing endpoint, responses to the compute endpoint.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..mem.address import AddressRange, DEFAULT_SECTION_BYTES
from ..net.link import ChannelEndpointView
from ..opencapi.bus import SystemBus
from ..opencapi.mmio import MmioRegisterFile
from ..opencapi.pasid import PasidRegistry
from ..opencapi.ports import OpenCapiC1Port, OpenCapiM1Port
from ..opencapi.transactions import MemTransaction
from ..sim.engine import Simulator
from .endpoints import (
    ComputeEndpoint,
    EndpointError,
    MemoryStealingEndpoint,
    RetryPolicy,
)
from .hbm import HbmCache, HbmCacheConfig
from .llc import LlcConfig, LlcEndpoint
from .rmmu import Rmmu
from .routing import RoutingLayer

__all__ = ["ThymesisFlowDevice"]


class ThymesisFlowDevice:
    """A complete ThymesisFlow FPGA instance.

    Typical bring-up (done by :mod:`repro.testbed` / the control plane):

    1. ``connect_channel(view)`` for each cabled network channel.
    2. Compute role: ``attach_compute(bus, window)`` — firmware maps the
       real-address window and wires the M1 port.
    3. Memory role: ``enable_memory_role(bus, pasids)`` — creates the C1
       port mastering into the donor's bus.
    4. The agent programs sections and routes through :attr:`mmio` (or
       the typed helpers :meth:`program_section` / :meth:`program_route`).
    """

    #: The prototype drives two independent 100 Gb/s channels per card.
    MAX_CHANNELS = 2

    def __init__(
        self,
        sim: Simulator,
        name: str = "tf",
        section_bytes: int = DEFAULT_SECTION_BYTES,
        llc_config: Optional[LlcConfig] = None,
        max_channels: int = MAX_CHANNELS,
        host_crossing_s: Optional[float] = None,
        transaction_timeout_s: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        self.sim = sim
        self.name = name
        self.max_channels = max_channels
        #: Host-link serdes crossing; 0.0 models the §VII projection of
        #: a ThymesisFlow integrated into the processor SoC ("would save
        #: four serDES crossings" per round trip). None = off-chip FPGA.
        self.host_crossing_s = host_crossing_s
        self.llc_config = llc_config or LlcConfig()
        self.mmio = MmioRegisterFile(name=f"{name}.mmio")
        self.routing = RoutingLayer(sim, name=f"{name}.rt")
        self.routing.set_rx_handler(self._dispatch)
        self.rmmu = Rmmu(section_bytes=section_bytes, name=f"{name}.rmmu")
        self.rmmu.attach_mmio(self.mmio, base_offset=0x100)
        self.compute = ComputeEndpoint(
            sim,
            self.rmmu,
            self.routing,
            name=f"{name}.compute",
            transaction_timeout_s=transaction_timeout_s,
            retry_policy=retry_policy,
        )
        self.memory: Optional[MemoryStealingEndpoint] = None
        self.m1_port: Optional[OpenCapiM1Port] = None
        self.c1_port: Optional[OpenCapiC1Port] = None
        self.llcs: List[LlcEndpoint] = []
        self._define_route_mmio()

    # -- channel wiring ----------------------------------------------------------
    def connect_channel(self, view: ChannelEndpointView) -> int:
        """Terminate one network channel on this card."""
        if len(self.llcs) >= self.max_channels:
            raise EndpointError(
                f"{self.name}: all {self.max_channels} channels in use"
            )
        index = len(self.llcs)
        llc = LlcEndpoint(
            self.sim, view, self.llc_config, name=f"{self.name}.llc{index}"
        )
        self.llcs.append(llc)
        assert self.routing.add_channel(llc) == index
        return index

    @property
    def channel_count(self) -> int:
        return len(self.llcs)

    # -- compute role -------------------------------------------------------------
    def attach_compute(self, bus: SystemBus, window: AddressRange) -> None:
        """Map this device's compute endpoint into a host bus window."""
        if self.host_crossing_s is None:
            self.m1_port = OpenCapiM1Port(self.sim, name=f"{self.name}.m1")
        else:
            self.m1_port = OpenCapiM1Port(
                self.sim,
                name=f"{self.name}.m1",
                crossing_latency_s=self.host_crossing_s,
            )
        self.m1_port.connect_device(self.compute)
        self.compute.assign_window(window)
        self.m1_port.attach_to_bus(bus, window)

    # -- HBM caching layer (§VII extension) ----------------------------------------------
    def enable_hbm_cache(
        self, config: Optional[HbmCacheConfig] = None
    ) -> HbmCache:
        """Add the on-card HBM cache in front of the compute RMMU."""
        cache = HbmCache(config, name=f"{self.name}.hbm")
        self.compute.enable_hbm_cache(cache)
        return cache

    # -- memory-stealing role ---------------------------------------------------------
    def enable_memory_role(
        self, donor_bus: SystemBus, pasids: PasidRegistry
    ) -> MemoryStealingEndpoint:
        """Create the C1 mastering path into the donor host's memory."""
        if self.host_crossing_s is None:
            self.c1_port = OpenCapiC1Port(
                self.sim, donor_bus, pasids, name=f"{self.name}.c1"
            )
        else:
            self.c1_port = OpenCapiC1Port(
                self.sim,
                donor_bus,
                pasids,
                name=f"{self.name}.c1",
                crossing_latency_s=self.host_crossing_s,
            )
        self.memory = MemoryStealingEndpoint(
            self.sim, self.c1_port, self.routing, name=f"{self.name}.memory"
        )
        return self.memory

    # -- agent-facing configuration helpers ----------------------------------------------
    def program_section(
        self, section_index: int, donor_base: int, wire_network_id: int
    ) -> None:
        """Program one RMMU section entry through the MMIO interface."""
        self.mmio.write_named("RMMU_SECTION_INDEX", section_index)
        self.mmio.write_named("RMMU_DONOR_BASE", donor_base)
        self.mmio.write_named("RMMU_SECTION_CTRL", wire_network_id)

    def clear_section(self, section_index: int) -> None:
        self.mmio.write_named("RMMU_SECTION_INDEX", section_index)
        self.mmio.write_named("RMMU_SECTION_CTRL", (1 << 64) - 1)
        if self.compute.hbm is not None:
            # Cached copies of a detached section must not survive a
            # future attachment reusing the same device sections.
            section_bytes = self.rmmu.section_bytes
            self.compute.hbm.invalidate_range(
                section_index * section_bytes, section_bytes
            )

    def program_route(self, network_id: int, channels: List[int]) -> None:
        """Program the routing table through the MMIO interface."""
        mask = 0
        for channel in channels:
            mask |= 1 << channel
        self.mmio.write_named("ROUTE_NETWORK_ID", network_id)
        self.mmio.write_named("ROUTE_CHANNEL_MASK", mask)
        self.mmio.write_named("ROUTE_CTRL", 1)

    def clear_route(self, network_id: int) -> None:
        self.mmio.write_named("ROUTE_NETWORK_ID", network_id)
        self.mmio.write_named("ROUTE_CTRL", 0)

    # -- observability ------------------------------------------------------------------
    def register_metrics(self, registry, **labels) -> None:
        """Register every sub-component of this card into ``registry``."""
        self.rmmu.register_metrics(registry, **labels)
        self.routing.register_metrics(registry, **labels)
        self.compute.register_metrics(registry, **labels)
        if self.memory is not None:
            self.memory.register_metrics(registry, **labels)
        for llc in self.llcs:
            llc.register_metrics(registry, **labels)

    # -- internals ----------------------------------------------------------------------
    def _define_route_mmio(self) -> None:
        state = {"network_id": 0, "mask": 0}
        self.mmio.define(
            "ROUTE_NETWORK_ID",
            0x200,
            on_write=lambda v: state.__setitem__("network_id", v),
        )
        self.mmio.define(
            "ROUTE_CHANNEL_MASK",
            0x208,
            on_write=lambda v: state.__setitem__("mask", v),
        )

        def commit(value: int) -> None:
            if value == 0:
                self.routing.remove_route(state["network_id"])
                return
            channels = [
                index
                for index in range(self.max_channels)
                if state["mask"] & (1 << index)
            ]
            self.routing.install_route(state["network_id"], channels)

        self.mmio.define("ROUTE_CTRL", 0x210, on_write=commit)
        self.mmio.define(
            "CHANNEL_COUNT",
            0x218,
            readonly=True,
            on_read=lambda: len(self.llcs),
        )

    def _dispatch(self, txn: MemTransaction, channel: int) -> None:
        """Route network ingress to the right endpoint role."""
        if txn.is_request:
            if self.memory is None:
                raise EndpointError(
                    f"{self.name}: request arrived but memory role disabled"
                )
            self.memory.deliver_request(txn, channel)
        else:
            self.compute.deliver_response(txn, channel)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        roles = ["compute"] if self.m1_port else []
        if self.memory is not None:
            roles.append("memory")
        return (
            f"ThymesisFlowDevice({self.name!r}, roles={roles}, "
            f"channels={len(self.llcs)})"
        )
