"""Software-defined control plane: state graph, planning, security, REST."""

from .api import RestApi
from .graph import GraphError, NodeKind, StateGraph
from .health import FailoverReport, HealthMonitor, HealthState
from .orchestrator import (
    Attachment,
    ControlPlane,
    OrchestrationError,
    UnknownAttachmentError,
)
from .planner import NoPathError, PathPlanner, PlannedPath
from .security import (
    AccessControl,
    AuthError,
    Permission,
    PlaneTrust,
    Role,
)
from .switching import SwitchDriver, extract_switch_hops

__all__ = [
    "ControlPlane",
    "Attachment",
    "OrchestrationError",
    "UnknownAttachmentError",
    "HealthMonitor",
    "HealthState",
    "FailoverReport",
    "StateGraph",
    "NodeKind",
    "GraphError",
    "PathPlanner",
    "PlannedPath",
    "NoPathError",
    "AccessControl",
    "Role",
    "Permission",
    "AuthError",
    "PlaneTrust",
    "RestApi",
    "SwitchDriver",
    "extract_switch_hops",
]
