"""perf(1)-style counter aggregation.

Mirrors the §VI-D methodology: "The average UCC is based on the
task-clock perf event … The single-thread IPC … is obtained by dividing
instructions by the value of cycles. Finally, the average IPC across
the whole CPU package is obtained multiplying the single-thread IPC by
the average UCC."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["PerfSample", "PerfAggregator"]


@dataclass
class PerfSample:
    """Raw counters for one measurement window (one simulated run)."""

    instructions: float
    cycles: float
    task_clock_s: float
    wall_clock_s: float
    stalled_cycles_backend: float = 0.0
    stalled_cycles_frontend: float = 0.0

    def __post_init__(self):
        if self.cycles <= 0:
            raise ValueError(f"cycles must be > 0: {self.cycles}")
        if self.wall_clock_s <= 0:
            raise ValueError(f"wall_clock_s must be > 0: {self.wall_clock_s}")

    @property
    def thread_ipc(self) -> float:
        """Single-thread IPC: instructions / cycles."""
        return self.instructions / self.cycles

    @property
    def utilized_cores(self) -> float:
        """UCC from task-clock: busy CPU-seconds per wall second."""
        return self.task_clock_s / self.wall_clock_s

    @property
    def package_ipc(self) -> float:
        """Whole-package IPC = single-thread IPC × UCC (§VI-D)."""
        return self.thread_ipc * self.utilized_cores

    @property
    def backend_stall_fraction(self) -> float:
        return self.stalled_cycles_backend / self.cycles

    @property
    def frontend_stall_fraction(self) -> float:
        return self.stalled_cycles_frontend / self.cycles


class PerfAggregator:
    """Accumulates samples across repeated runs / workload phases."""

    def __init__(self):
        self._totals: Dict[str, float] = {
            "instructions": 0.0,
            "cycles": 0.0,
            "task_clock_s": 0.0,
            "wall_clock_s": 0.0,
            "stalled_cycles_backend": 0.0,
            "stalled_cycles_frontend": 0.0,
        }
        self.samples = 0

    def add(self, sample: PerfSample) -> None:
        self._totals["instructions"] += sample.instructions
        self._totals["cycles"] += sample.cycles
        self._totals["task_clock_s"] += sample.task_clock_s
        self._totals["wall_clock_s"] += sample.wall_clock_s
        self._totals["stalled_cycles_backend"] += sample.stalled_cycles_backend
        self._totals["stalled_cycles_frontend"] += sample.stalled_cycles_frontend
        self.samples += 1

    def combined(self) -> PerfSample:
        if self.samples == 0:
            raise ValueError("no samples recorded")
        return PerfSample(**self._totals)
