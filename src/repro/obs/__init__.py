"""repro.obs — end-to-end observability for the simulated stack.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — a span-based transaction tracer. Every
  instrumented component marks the stage boundaries a transaction
  crosses (bus issue, RMMU translate, routing, LLC framing, wire,
  DRAM service, completion); the tracer derives contiguous per-layer
  spans from those marks, so one transaction's child spans tile its
  end-to-end latency exactly.
* :mod:`repro.obs.metrics` — a hierarchical registry of counters,
  gauges and histograms with label sets. Components expose their
  counters through ``register_metrics`` hooks; the registry pulls them
  at snapshot time, so the hot path pays nothing.
* :mod:`repro.obs.export` — exporters: Chrome ``trace_event`` JSON
  (loadable in Perfetto / chrome://tracing), a flat metrics snapshot
  dict/JSON, and a human-readable end-of-run summary table built on
  :mod:`repro.obs.summary`.

Instrumentation is **off by default**: every call site is guarded by
the module-level :data:`repro.obs.trace.ENABLED` flag, checked before
any allocation, so the fast-path wins of the simulation kernel are
preserved when observability is not requested. When on, 1-in-N
transaction sampling (``sample_every``) bounds tracing volume further.

This package deliberately imports nothing from the rest of ``repro``
(stdlib only): the simulation kernel itself hooks into it, and a
dependency back into :mod:`repro.sim` would be circular.
"""

from .trace import (
    ENABLED,
    Tracer,
    TxnRecord,
    active_tracer,
    disable_tracing,
    enable_tracing,
    tracing,
)
from .metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    parse_qualified,
)
from .summary import RunSummary, summary_from_snapshot
from .export import (
    chrome_trace,
    render_metrics_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_json,
)

__all__ = [
    "ENABLED",
    "Tracer",
    "TxnRecord",
    "active_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "parse_qualified",
    "RunSummary",
    "summary_from_snapshot",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "write_metrics_json",
    "render_metrics_summary",
]
