"""ESRally "nested" track — paper §VI-F / Fig. 9.

The dataset is "a dump of StackOverflow posts retrieved as of June 10,
2016": questions with nested answers, each question carrying tags and a
creation date. We synthesize a corpus with the same queryable structure
and implement the four challenges the paper reports:

* **RTQ** — "searches for all questions that feature a random generated
  tag";
* **RNQIHBS** — questions with at least 100 answers before a random
  date (the paper's listing misspells it RNQINBS in one spot; we keep
  the figure's RNQIHBS);
* **RSTQ** — tag search sorted descending by date;
* **MA** — "queries all questions" (match-all).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..sim.rng import SeededRNG, ZipfGenerator

__all__ = [
    "Challenge",
    "NestedQuery",
    "StackOverflowPost",
    "CorpusConfig",
    "build_corpus",
    "NestedTrackGenerator",
]

#: Tag vocabulary mimicking StackOverflow's skewed tag popularity.
TAG_VOCABULARY_SIZE = 500


class Challenge(enum.Enum):
    """The reported subset of the nested track's challenges."""

    RTQ = "random-tag-query"
    RNQIHBS = "random-num-questions-in-history-before-sort"
    RSTQ = "random-sorted-tag-query"
    MA = "match-all"


@dataclass(frozen=True)
class NestedQuery:
    challenge: Challenge
    tag: Optional[str] = None
    before_date: Optional[int] = None
    min_answers: int = 0
    sort_by_date: bool = False


@dataclass(frozen=True)
class StackOverflowPost:
    """One question document with nested answers."""

    doc_id: int
    tags: Tuple[str, ...]
    created: int            #: days since epoch of the dump
    answer_count: int
    answer_dates: Tuple[int, ...]
    body_tokens: Tuple[str, ...] = ()


@dataclass(frozen=True)
class CorpusConfig:
    documents: int = 20_000
    max_tags_per_doc: int = 5
    date_span_days: int = 2800  # SO's 2008..2016 history
    tag_zipf_exponent: float = 1.2
    seed: int = 23


def build_corpus(config: Optional[CorpusConfig] = None) -> List[StackOverflowPost]:
    """Synthesize a StackOverflow-like corpus (deterministic per seed)."""
    config = config or CorpusConfig()
    rng = SeededRNG(config.seed).derive("corpus")
    tag_picker = ZipfGenerator(
        TAG_VOCABULARY_SIZE, config.tag_zipf_exponent, rng.derive("tags")
    )
    posts: List[StackOverflowPost] = []
    for doc_id in range(config.documents):
        tag_count = rng.randint(1, config.max_tags_per_doc)
        tags = tuple(
            sorted({f"tag{tag_picker.sample():04d}" for _ in range(tag_count)})
        )
        created = rng.randint(0, config.date_span_days)
        # Long-tailed answer counts; a few questions accumulate hundreds.
        answer_count = min(int(rng.pareto(1.3, scale=1.0)) - 1, 400)
        answer_count = max(0, answer_count)
        answer_dates = tuple(
            sorted(
                rng.randint(created, config.date_span_days)
                for _ in range(answer_count)
            )
        )
        posts.append(
            StackOverflowPost(
                doc_id=doc_id,
                tags=tags,
                created=created,
                answer_count=answer_count,
                answer_dates=answer_dates,
            )
        )
    return posts


class NestedTrackGenerator:
    """Deterministic query stream for the four challenges."""

    def __init__(self, config: Optional[CorpusConfig] = None, seed: int = 31):
        self.config = config or CorpusConfig()
        self._rng = SeededRNG(seed).derive("nested-track")
        self._tag_picker = ZipfGenerator(
            TAG_VOCABULARY_SIZE,
            self.config.tag_zipf_exponent,
            self._rng.derive("query-tags"),
        )

    def _random_tag(self) -> str:
        return f"tag{self._tag_picker.sample():04d}"

    def queries(self, challenge: Challenge, count: int) -> Iterator[NestedQuery]:
        for _ in range(count):
            if challenge is Challenge.RTQ:
                yield NestedQuery(challenge, tag=self._random_tag())
            elif challenge is Challenge.RNQIHBS:
                yield NestedQuery(
                    challenge,
                    min_answers=100,
                    before_date=self._rng.randint(
                        0, self.config.date_span_days
                    ),
                )
            elif challenge is Challenge.RSTQ:
                yield NestedQuery(
                    challenge, tag=self._random_tag(), sort_by_date=True
                )
            elif challenge is Challenge.MA:
                yield NestedQuery(challenge)
            else:  # pragma: no cover - future challenges
                raise ValueError(f"unknown challenge {challenge!r}")
