"""Unit tests for Resource, Store and CreditPool."""

import pytest

from repro.sim import (
    CreditPool,
    Resource,
    SimulationError,
    Simulator,
    Store,
    Timeout,
)


class TestResource:
    def test_acquire_within_capacity_is_immediate(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)

        def proc():
            yield resource.acquire()
            return sim.now

        assert sim.run_process(proc()) == 0.0

    def test_acquire_blocks_until_release(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        timeline = []

        def holder():
            yield resource.acquire()
            yield Timeout(5.0)
            resource.release()

        def waiter():
            yield Timeout(1.0)
            yield resource.acquire()
            timeline.append(sim.now)
            resource.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert timeline == [5.0]

    def test_fifo_granting(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def holder():
            yield resource.acquire()
            yield Timeout(10.0)
            resource.release()

        def waiter(tag, arrive):
            yield Timeout(arrive)
            yield resource.acquire()
            order.append(tag)
            resource.release()

        sim.process(holder())
        for tag, arrive in [("first", 1.0), ("second", 2.0), ("third", 3.0)]:
            sim.process(waiter(tag, arrive))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_without_acquire_raises(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_available_tracks_usage(self):
        sim = Simulator()
        resource = Resource(sim, capacity=3)

        def proc():
            yield resource.acquire()
            yield resource.acquire()
            assert resource.available == 1
            resource.release()
            assert resource.available == 2
            resource.release()

        sim.run_process(proc())
        assert resource.available == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), capacity=0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)

        def proc():
            yield store.put("item")
            value = yield store.get()
            return value

        assert sim.run_process(proc()) == "item"

    def test_get_blocks_until_put(self):


        sim = Simulator()
        store = Store(sim)

        def consumer():
            value = yield store.get()
            return (value, sim.now)

        def producer():
            yield Timeout(3.0)
            yield store.put("late")

        proc = sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert proc.result == ("late", 3.0)

    def test_fifo_ordering_of_items(self):


        sim = Simulator()
        store = Store(sim)

        def producer():
            for item in range(5):
                yield store.put(item)

        def consumer():
            got = []
            for _ in range(5):
                got.append((yield store.get()))
            return got

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run()
        assert proc.result == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks_when_full(self):


        sim = Simulator()
        store = Store(sim, capacity=1)
        timeline = []

        def producer():
            yield store.put("a")
            yield store.put("b")  # blocks until consumer drains "a"
            timeline.append(sim.now)

        def consumer():
            yield Timeout(4.0)
            yield store.get()

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert timeline == [4.0]

    def test_try_put_respects_capacity(self):


        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put(1) is True
        assert store.try_put(2) is True
        assert store.try_put(3) is False
        assert len(store) == 2

    def test_try_get_returns_none_when_empty(self):


        store = Store(Simulator())
        assert store.try_get() is None
        store.try_put("x")
        assert store.try_get() == "x"

    def test_counters(self):


        store = Store(Simulator())
        for i in range(3):
            store.try_put(i)
        store.try_get()
        assert store.total_put == 3
        assert store.total_got == 1


class TestCreditPool:
    def test_try_consume_and_grant(self):
        sim = Simulator()
        pool = CreditPool(sim, initial=2)
        assert pool.try_consume() is True
        assert pool.try_consume() is True
        assert pool.try_consume() is False
        pool.grant(1)
        assert pool.try_consume() is True

    def test_consume_blocks_at_zero_until_grant(self):
        sim = Simulator()
        pool = CreditPool(sim, initial=0)
        timeline = []

        def transmitter():
            yield pool.consume()
            timeline.append(sim.now)

        sim.process(transmitter())
        sim.schedule(2.0, pool.grant, 1)
        sim.run()
        assert timeline == [2.0]

    def test_blocked_consumers_served_fifo(self):
        sim = Simulator()
        pool = CreditPool(sim, initial=0)
        order = []

        def transmitter(tag, arrive):
            yield Timeout(arrive)
            yield pool.consume()
            order.append(tag)

        for tag, arrive in [("a", 0.1), ("b", 0.2), ("c", 0.3)]:
            sim.process(transmitter(tag, arrive))
        sim.schedule(1.0, pool.grant, 3)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_multi_credit_consume_waits_for_full_amount(self):
        sim = Simulator()
        pool = CreditPool(sim, initial=1)
        timeline = []

        def transmitter():
            yield pool.consume(3)
            timeline.append(sim.now)

        sim.process(transmitter())
        sim.schedule(1.0, pool.grant, 1)
        sim.schedule(2.0, pool.grant, 1)
        sim.run()
        assert timeline == [2.0]

    def test_stall_count_records_backpressure(self):
        sim = Simulator()
        pool = CreditPool(sim, initial=0)

        def transmitter():
            yield pool.consume()

        sim.process(transmitter())
        sim.schedule(1.0, pool.grant, 1)
        sim.run()
        assert pool.stall_count == 1

    def test_accounting_totals(self):
        sim = Simulator()
        pool = CreditPool(sim, initial=5)
        pool.try_consume(1)
        pool.try_consume(1)
        pool.grant(3)
        assert pool.total_consumed == 2
        assert pool.total_granted == 3
        assert pool.credits == 6

    def test_negative_arguments_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            CreditPool(sim, initial=-1)
        pool = CreditPool(sim, initial=1)
        with pytest.raises(SimulationError):
            pool.grant(-1)
        with pytest.raises(SimulationError):
            pool.consume(0)
