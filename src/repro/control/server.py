"""Production asyncio HTTP control-plane server.

This is the real socket in front of :class:`~repro.control.api.RestApi`
— ROADMAP item 4's "promote the in-process REST facade to a
production-grade asyncio server". Pure stdlib ``asyncio`` streams, no
framework: an HTTP/1.1 request parser, keep-alive connections, bearer
tokens, and a bounded, QoS-aware admission pipeline between the socket
and the dispatch table:

* every parsed request is classified by its tenant's QoS class
  (:class:`~repro.control.qos.QosClass`; non-tenant credentials —
  operators, admins — ride in ``guaranteed``);
* admission pushes it into the bounded
  :class:`~repro.control.qos.AdmissionQueue` — a full class budget
  sheds the request *immediately* with a 503 (``server/overloaded``)
  instead of queueing without bound;
* worker tasks drain the queue strictly by class priority, so under
  overload guaranteed tenants keep their latency while best-effort
  traffic sheds first;
* a draining server answers every new request with a 503
  (``server/draining``) and finishes what it already admitted —
  graceful drain, nothing dropped mid-flight.

``GET /v1/metrics`` responses are unwrapped to the raw Prometheus text
exposition with its proper content type, so a real Prometheus can
scrape the live registry straight off this socket.

Request metrics (``server.*``) land in the same
:class:`~repro.obs.MetricsRegistry` the exposition serves — the server
measures itself through the pipe it exposes.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Optional, Tuple

from ..errors import http_status_for
from ..obs import events as _events
from .api import RestApi, RouteSpec
from .qos import (
    AdmissionQueue,
    DrainingError,
    OverloadedError,
    QosClass,
)

__all__ = ["ControlServer", "ServerConfig", "http_request"]

_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 401: "Unauthorized", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    502: "Bad Gateway", 503: "Service Unavailable",
}


@dataclass(frozen=True)
class ServerConfig:
    """Socket + admission-control knobs."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; read ``server.port`` after start()
    #: Concurrent dispatch tasks draining the admission queue.
    workers: int = 4
    #: Total bounded backlog; per-class budgets derive from it.
    max_queue_depth: int = 256
    #: Override the per-class depth shares (fractions of max_queue_depth).
    queue_shares: Optional[Dict[QosClass, float]] = None
    #: Largest accepted request body.
    max_body_bytes: int = 1 << 20
    #: Per-request header/body read timeout (slowloris guard).
    read_timeout_s: float = 30.0
    #: Listen backlog — sized for open-loop burst arrivals.
    backlog: int = 512


class _Job:
    __slots__ = (
        "method", "target", "body", "token", "qos", "tenant",
        "future", "enqueued_at",
    )

    def __init__(self, method, target, body, token, qos, tenant, future):
        self.method = method
        self.target = target
        self.body = body
        self.token = token
        self.qos = qos
        self.tenant = tenant
        self.future = future
        self.enqueued_at = perf_counter()


class ControlServer:
    """Asyncio HTTP server fronting a :class:`RestApi` dispatch table."""

    def __init__(
        self,
        api: RestApi,
        config: Optional[ServerConfig] = None,
        registry=None,
    ):
        self.api = api
        self.config = config or ServerConfig()
        self.registry = registry if registry is not None else api.registry
        self.queue = AdmissionQueue(
            max_depth=self.config.max_queue_depth,
            shares=self.config.queue_shares,
        )
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._workers = []
        self._wakeup: Optional[asyncio.Event] = None
        self._draining = False
        self._inflight = 0
        self.requests_served = 0
        if self.registry is not None:
            self.registry.add_collector(self._collect)

    # -- lifecycle -----------------------------------------------------------------
    async def start(self) -> "ControlServer":
        """Bind the socket and start the worker pool."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._wakeup = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.config.host,
            self.config.port,
            backlog=self.config.backlog,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker()) for _ in range(self.config.workers)
        ]
        if _events.ENABLED:
            _events.emit(
                self._now(), "server.listen",
                host=self.config.host, port=self.port,
                workers=self.config.workers,
                max_queue_depth=self.config.max_queue_depth,
            )
        return self

    @property
    def draining(self) -> bool:
        return self._draining

    async def drain(self) -> None:
        """Graceful shutdown: stop admitting, finish everything admitted.

        The listening socket closes first (no new connections), live
        keep-alive connections get ``server/draining`` 503s for any new
        request, and the worker pool runs until the queue and every
        in-flight dispatch are finished — admitted work is never
        dropped.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        while len(self.queue) > 0 or self._inflight > 0:
            self._wakeup.set()
            await asyncio.sleep(0.002)
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if _events.ENABLED:
            _events.emit(
                self._now(), "server.drained",
                served=self.requests_served, shed=self.queue.shed_count,
            )

    async def __aenter__(self) -> "ControlServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.drain()

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    # -- the admission pipeline ----------------------------------------------------
    def _classify(self, token: Optional[str]) -> Tuple[QosClass, Optional[str]]:
        """Tenant + QoS class behind a credential.

        Tenants carry their registered class; non-tenant credentials
        (the operator/admin surface) are guaranteed — the plane's own
        operators must still reach it during an overload.
        """
        tenant = self.api.plane.tenant_of(token)
        if tenant is None:
            return QosClass.GUARANTEED, None
        return self.api.plane.quotas.spec(tenant).qos, tenant

    async def _dispatch(
        self, method: str, target: str, body: Dict, token: Optional[str]
    ) -> Tuple[int, Dict, QosClass]:
        """Admit → queue → await the worker's response."""
        qos, tenant = self._classify(token)
        if self._draining:
            error = DrainingError("server is draining; retry elsewhere")
            self._count_shed("draining", qos)
            return http_status_for(error.code), error.describe(), qos
        future = asyncio.get_running_loop().create_future()
        job = _Job(method, target, body, token, qos, tenant, future)
        try:
            self.queue.push(qos, job)
        except OverloadedError as error:
            self._count_shed("overloaded", qos)
            return http_status_for(error.code), error.describe(), qos
        self._wakeup.set()
        status, response = await future
        return status, response, qos

    async def _worker(self) -> None:
        while True:
            job = self.queue.pop()
            if job is None:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            self._inflight += 1
            started = perf_counter()
            try:
                status, body = self.api.handle(
                    job.method, job.target, job.body, job.token
                )
            except Exception as exc:  # defensive: handle() maps domain errors
                status, body = 500, {
                    "error": f"{type(exc).__name__}: {exc}",
                    "code": "repro/error",
                }
            finally:
                self._inflight -= 1
            self._observe(job, status, started)
            if not job.future.cancelled():
                job.future.set_result((status, body))
            # One request per loop tick: parsing/writing tasks stay live
            # even while the queue is deep.
            await asyncio.sleep(0)

    # -- connection handling -------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.registry is not None:
            self.registry.counter("server.connections").inc()
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        self._read_request(reader),
                        timeout=self.config.read_timeout_s,
                    )
                except asyncio.TimeoutError:
                    break
                except _BadRequest as exc:
                    await self._write_response(
                        writer, exc.status,
                        {"error": exc.message, "code": exc.code},
                        raw_spec=None, keep_alive=False,
                    )
                    break
                if request is None:  # peer closed
                    break
                method, target, headers, body = request
                token = _bearer_token(headers)
                status, response, _qos = await self._dispatch(
                    method, target, body, token
                )
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                    and not self._draining
                )
                raw_spec = self.api.route_for(method, target)
                await self._write_response(
                    writer, status, response,
                    raw_spec=raw_spec, keep_alive=keep_alive,
                )
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            raise _BadRequest(400, f"malformed request line {line!r}")
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _BadRequest(
                400, f"bad content-length {length_text!r}"
            )
        if length > self.config.max_body_bytes:
            raise _BadRequest(
                413,
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit",
                code="request/too-large",
            )
        body: Dict = {}
        if length:
            blob = await reader.readexactly(length)
            try:
                body = json.loads(blob)
            except ValueError:
                raise _BadRequest(400, "request body is not valid JSON")
            if not isinstance(body, dict):
                raise _BadRequest(400, "request body must be a JSON object")
        return method.upper(), target, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict,
        raw_spec: Optional[RouteSpec],
        keep_alive: bool,
    ) -> None:
        if raw_spec is not None and raw_spec.raw and status == 200:
            payload = body["body"].encode("utf-8")
            content_type = body["content_type"]
        elif status == 204:
            payload = b""
            content_type = "application/json"
        else:
            payload = json.dumps(body, sort_keys=True).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    # -- observability -------------------------------------------------------------
    def _now(self) -> float:
        return self.api.plane._now()

    def _route_label(self, method: str, target: str) -> str:
        spec = self.api.route_for(method, target)
        return spec.template if spec is not None else "unmatched"

    def _observe(self, job: _Job, status: int, started: float) -> None:
        self.requests_served += 1
        if self.registry is None:
            return
        finished = perf_counter()
        self.registry.counter(
            "server.requests",
            route=self._route_label(job.method, job.target),
            method=job.method,
            status=status,
            qos=job.qos.value,
        ).inc()
        self.registry.histogram(
            "server.queue_wait_s", low=0.0, high=2.0, bins=40,
            qos=job.qos.value,
        ).observe(started - job.enqueued_at)
        self.registry.histogram(
            "server.service_s", low=0.0, high=2.0, bins=40,
            qos=job.qos.value,
        ).observe(finished - started)

    def _count_shed(self, reason: str, qos: QosClass) -> None:
        if self.registry is not None:
            self.registry.counter(
                "server.shed", reason=reason, qos=qos.value
            ).inc()

    def _collect(self, registry) -> None:
        registry.gauge("server.queue_depth").set(len(self.queue))
        registry.gauge("server.inflight").set(self._inflight)
        registry.gauge("server.draining").set(1.0 if self._draining else 0.0)


class _BadRequest(Exception):
    """Parse-level failure answered before dispatch."""

    def __init__(self, status: int, message: str, code: str = "request/invalid"):
        super().__init__(message)
        self.status = status
        self.message = message
        self.code = code


def _bearer_token(headers: Dict[str, str]) -> Optional[str]:
    auth = headers.get("authorization", "")
    if auth.lower().startswith("bearer "):
        return auth[7:].strip()
    return None


async def http_request(
    host: str,
    port: int,
    method: str,
    target: str,
    body: Optional[Dict] = None,
    token: Optional[str] = None,
    timeout_s: float = 30.0,
):
    """Minimal one-shot HTTP client (stdlib streams, for tests/loadgen).

    Returns ``(status, headers, body)`` where ``body`` is the parsed
    JSON object for JSON responses and the raw text otherwise.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        head = f"{method} {target} HTTP/1.1\r\nHost: {host}\r\n"
        if token is not None:
            head += f"Authorization: Bearer {token}\r\n"
        if payload:
            head += "Content-Type: application/json\r\n"
        head += f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout=timeout_s)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    text = body_blob.decode("utf-8")
    if headers.get("content-type", "").startswith("application/json") and text:
        return status, headers, json.loads(text)
    return status, headers, text
