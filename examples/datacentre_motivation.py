#!/usr/bin/env python3
"""Fig. 1 motivation study: why disaggregate at all?

Replays a synthetic Google-ClusterData-like request stream against two
datacentre models — conventional fixed servers vs disaggregated
compute/memory modules — with an online best-fit scheduler, and reports
the fragmentation indices and power-off opportunities of Fig. 1.

Run:  python examples/datacentre_motivation.py [units]
"""

import sys

from repro.cluster import (
    ratio_span_orders_of_magnitude,
    run_fig1_experiment,
    scaled_trace_config,
    synthesize_trace,
)


def main() -> None:
    units = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    config = scaled_trace_config(units=units)
    print(f"Datacentre size : {units} servers vs {units}+{units} modules")
    print(f"Trace           : {config.tasks} tasks, "
          f"mean duration {config.mean_duration:.0f}")
    span = ratio_span_orders_of_magnitude(iter(synthesize_trace(config)))
    print(f"mem/CPU ratios span {span:.1f} orders of magnitude "
          "(paper: ~3)\n")

    print("Replaying trace against both models (best-fit, no overcommit)...")
    reports = run_fig1_experiment(config, units=units)
    fixed = reports["fixed"]
    disagg = reports["disaggregated"]

    header = f"{'metric':<28}{'fixed':>10}{'disaggregated':>16}{'paper':>16}"
    print("\n" + header)
    print("-" * len(header))
    rows = [
        ("fragmentation CPU (%)", fixed.cpu_fragmentation_pct,
         disagg.cpu_fragmentation_pct, "16.0 / 3.9"),
        ("fragmentation MEM (%)", fixed.memory_fragmentation_pct,
         disagg.memory_fragmentation_pct, "29.5 / 9.2"),
        ("power-off compute (%)", fixed.compute_off_pct,
         disagg.compute_off_pct, "1.0 / 8.0"),
        ("power-off memory (%)", fixed.memory_off_pct,
         disagg.memory_off_pct, "1.0 / 27.0"),
    ]
    for label, f_value, d_value, paper in rows:
        print(f"{label:<28}{f_value:>10.2f}{d_value:>16.2f}{paper:>16}")

    cpu_factor = fixed.cpu_fragmentation_pct / disagg.cpu_fragmentation_pct
    mem_factor = (fixed.memory_fragmentation_pct
                  / disagg.memory_fragmentation_pct)
    print(f"\nDisaggregation cuts CPU fragmentation {cpu_factor:.1f}x "
          f"and memory fragmentation {mem_factor:.1f}x")
    print("(paper: 4.1x and 3.2x) — \"testimony to the promise brought "
          "by disaggregation\".")


if __name__ == "__main__":
    main()
