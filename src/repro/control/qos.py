"""QoS classes, per-tenant quotas, and bounded admission queueing.

The paper's control plane is what makes disaggregated memory
*software-defined*; serving it to many tenants at once needs the three
things an in-process facade never had to express:

* **QoS classes** — every tenant is ``guaranteed``, ``burstable`` or
  ``best_effort``. The class decides queue priority under load and
  whether the planner's capacity headroom check applies (best-effort
  attaches may not eat into the reserve kept for guaranteed tenants).
* **Quotas** — per-tenant ceilings on live attachments and attached
  bytes, charged by the orchestrator at attach and released at detach.
  Exhaustion is a structured 429 (``control/quota-exceeded``), not a
  planner failure.
* **Admission queueing** — the async server bounds its backlog with a
  per-class budget split; when a class's budget is full the request is
  shed immediately with a 503 (``server/overloaded``) instead of
  queueing without bound and collapsing every tenant's latency.

Everything here is synchronous, deterministic state — the asyncio
server (:mod:`repro.control.server`) wraps :class:`AdmissionQueue`
with its own wakeup primitive, and the orchestrator consults
:class:`QuotaLedger` inline.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ReproError

__all__ = [
    "QosClass",
    "TenantSpec",
    "QuotaLedger",
    "AdmissionQueue",
    "QuotaExceededError",
    "NoHeadroomError",
    "OverloadedError",
    "DrainingError",
]


class QuotaExceededError(ReproError, RuntimeError):
    """A tenant asked for more than its quota allows (HTTP 429)."""

    code = "control/quota-exceeded"


class NoHeadroomError(ReproError, RuntimeError):
    """A best-effort attach would eat the guaranteed reserve (503)."""

    code = "control/no-headroom"


class OverloadedError(ReproError, RuntimeError):
    """The admission queue budget for this class is full (503)."""

    code = "server/overloaded"


class DrainingError(ReproError, RuntimeError):
    """The server is draining and accepts no new work (503)."""

    code = "server/draining"


class QosClass(enum.Enum):
    """Service classes, best first. Order is queue priority."""

    GUARANTEED = "guaranteed"
    BURSTABLE = "burstable"
    BEST_EFFORT = "best_effort"

    @property
    def priority(self) -> int:
        """0 is served first."""
        return _PRIORITY[self]

    @classmethod
    def parse(cls, text: "str | QosClass") -> "QosClass":
        if isinstance(text, cls):
            return text
        for member in cls:
            if member.value == text:
                return member
        raise ValueError(
            f"unknown QoS class {text!r} "
            f"(choose from {', '.join(m.value for m in cls)})"
        )


_PRIORITY = {
    QosClass.GUARANTEED: 0,
    QosClass.BURSTABLE: 1,
    QosClass.BEST_EFFORT: 2,
}

#: Default share of the admission-queue depth budgeted to each class.
#: Shares overlap deliberately: guaranteed may use the whole queue,
#: burstable most of it, best-effort only half — so under overload the
#: lowest class sheds first while better classes still enqueue.
DEFAULT_QUEUE_SHARES: Dict[QosClass, float] = {
    QosClass.GUARANTEED: 1.0,
    QosClass.BURSTABLE: 0.75,
    QosClass.BEST_EFFORT: 0.5,
}


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's identity, service class and quota ceilings.

    ``max_attachments``/``max_bytes`` of ``None`` mean unmetered (the
    admin surface); zero is a valid hard-deny quota.
    """

    name: str
    qos: QosClass = QosClass.BURSTABLE
    max_attachments: Optional[int] = None
    max_bytes: Optional[int] = None

    def describe(self) -> Dict:
        return {
            "name": self.name,
            "qos": self.qos.value,
            "max_attachments": self.max_attachments,
            "max_bytes": self.max_bytes,
        }


@dataclass
class _Usage:
    attachments: int = 0
    bytes: int = 0


class QuotaLedger:
    """Per-tenant usage accounting against :class:`TenantSpec` quotas.

    The orchestrator charges at attach (before any resource is
    reserved, so a denied request does no planner work) and releases
    at detach. ``charge`` raises :class:`QuotaExceededError` with the
    offending dimension in ``details``.
    """

    def __init__(self):
        self._specs: Dict[str, TenantSpec] = {}
        self._usage: Dict[str, _Usage] = {}

    def register(self, spec: TenantSpec) -> None:
        self._specs[spec.name] = spec
        self._usage.setdefault(spec.name, _Usage())

    def spec(self, tenant: str) -> TenantSpec:
        try:
            return self._specs[tenant]
        except KeyError:
            raise QuotaExceededError(
                f"unknown tenant {tenant!r}", tenant=tenant
            ) from None

    def tenants(self) -> List[str]:
        return sorted(self._specs)

    def charge(self, tenant: str, nbytes: int) -> None:
        spec = self.spec(tenant)
        usage = self._usage[tenant]
        if (
            spec.max_attachments is not None
            and usage.attachments + 1 > spec.max_attachments
        ):
            raise QuotaExceededError(
                f"tenant {tenant!r} at its attachment quota "
                f"({usage.attachments}/{spec.max_attachments})",
                tenant=tenant,
                dimension="attachments",
                limit=spec.max_attachments,
                used=usage.attachments,
            )
        if spec.max_bytes is not None and usage.bytes + nbytes > spec.max_bytes:
            raise QuotaExceededError(
                f"tenant {tenant!r} would exceed its byte quota "
                f"({usage.bytes + nbytes} > {spec.max_bytes})",
                tenant=tenant,
                dimension="bytes",
                limit=spec.max_bytes,
                used=usage.bytes,
                requested=nbytes,
            )
        usage.attachments += 1
        usage.bytes += nbytes

    def release(self, tenant: str, nbytes: int) -> None:
        usage = self._usage.get(tenant)
        if usage is None:  # tenant deregistered mid-flight: nothing to do
            return
        usage.attachments = max(0, usage.attachments - 1)
        usage.bytes = max(0, usage.bytes - nbytes)

    def usage(self, tenant: str) -> Dict:
        spec = self.spec(tenant)
        usage = self._usage[tenant]
        return {
            **spec.describe(),
            "attachments": usage.attachments,
            "bytes": usage.bytes,
        }

    def describe(self) -> List[Dict]:
        return [self.usage(name) for name in self.tenants()]


class AdmissionQueue:
    """Bounded multi-class FIFO with immediate shed on overflow.

    ``max_depth`` bounds total queued jobs; each class additionally
    gets ``share * max_depth`` slots (its budget), so best-effort
    traffic saturates and sheds while guaranteed traffic still fits.
    Jobs are opaque to the queue. ``push`` raises
    :class:`OverloadedError` (the caller turns it into a 503) instead
    of blocking — shedding at admission is what keeps latency bounded
    under overload.
    """

    def __init__(
        self,
        max_depth: int = 256,
        shares: Optional[Dict[QosClass, float]] = None,
    ):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        shares = dict(DEFAULT_QUEUE_SHARES, **(shares or {}))
        self._budget = {
            cls: max(1, int(shares[cls] * max_depth)) for cls in QosClass
        }
        self._queues: Dict[QosClass, Deque] = {
            cls: deque() for cls in QosClass
        }
        self.shed_count = 0
        self.pushed = 0

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def depth(self, qos: QosClass) -> int:
        return len(self._queues[qos])

    def budget(self, qos: QosClass) -> int:
        return self._budget[qos]

    def push(self, qos: QosClass, job) -> None:
        total = len(self)
        if total >= self.max_depth or len(self._queues[qos]) >= self._budget[qos]:
            self.shed_count += 1
            raise OverloadedError(
                f"admission queue full for class {qos.value!r} "
                f"({total}/{self.max_depth} queued, "
                f"budget {self._budget[qos]})",
                qos=qos.value,
                depth=total,
                budget=self._budget[qos],
            )
        self._queues[qos].append(job)
        self.pushed += 1

    def pop(self):
        """Highest-priority queued job, or ``None`` when empty."""
        for cls in QosClass:
            queue = self._queues[cls]
            if queue:
                return queue.popleft()
        return None
