"""Shared-resource primitives built on the simulation kernel.

These are the queueing building blocks used throughout the stack:

* :class:`Resource` — a counted semaphore (e.g. DRAM banks, thread-pool
  worker slots).
* :class:`Store` — a FIFO buffer of items with optional capacity, the
  canonical model for ingress/egress queues between pipeline stages.
* :class:`CreditPool` — explicit credit accounting used by the LLC
  backpressure scheme (credits granted by the Rx side, consumed by Tx).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import Signal, SimulationError, Simulator

__all__ = ["Resource", "Store", "CreditPool"]


class Resource:
    """Counted semaphore with FIFO granting.

    Usage inside a process::

        yield resource.acquire()
        try:
            ... hold the resource ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[tuple] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self, count: int = 1) -> Signal:
        """Waitable that fires when ``count`` slots are granted at once.

        Multi-slot acquires (burst DRAM accesses holding one bank per
        cacheline) queue FIFO behind earlier waiters like everything
        else, so a wide request cannot starve behind a stream of narrow
        ones nor vice versa.
        """
        if count < 1 or count > self.capacity:
            raise SimulationError(
                f"{self.name}: cannot acquire {count} of {self.capacity}"
            )
        grant = Signal(name=f"{self.name}.grant", oneshot=True)
        if not self._waiters and self.in_use + count <= self.capacity:
            self.in_use += count
            grant.fire()
        else:
            self._waiters.append((grant, count))
        return grant

    def release(self, count: int = 1) -> None:
        if count < 1 or self.in_use < count:
            raise SimulationError(f"{self.name}: release without acquire")
        self.in_use -= count
        while self._waiters:
            grant, needed = self._waiters[0]
            if self.in_use + needed > self.capacity:
                break
            self._waiters.popleft()
            self.in_use += needed
            grant.fire()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, {self.in_use}/{self.capacity}, "
            f"queued={len(self._waiters)})"
        )


class Store:
    """FIFO item buffer with optional bounded capacity.

    ``put`` blocks (as a waitable) while the store is full; ``get`` blocks
    while it is empty. FIFO order is preserved for both items and waiters,
    which matters for the in-order LLC frame pipeline.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "store",
    ):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self._putters: Deque[Signal] = deque()
        self._pending_puts: Deque[Any] = deque()
        self.total_put = 0
        self.total_got = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def put(self, item: Any) -> Signal:
        """Waitable put; fires once the item has been accepted."""
        done = Signal(name=f"{self.name}.put", oneshot=True)
        if not self.is_full and not self._pending_puts:
            self._accept(item)
            done.fire()
        else:
            self._pending_puts.append(item)
            self._putters.append(done)
        return done

    def try_put(self, item: Any) -> bool:
        """Non-blocking put. Returns False when the store is full."""
        if self.is_full or self._pending_puts:
            return False
        self._accept(item)
        return True

    def get(self) -> Signal:
        """Waitable get; fires with the item as the yield value."""
        got = Signal(name=f"{self.name}.get", oneshot=True)
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            self._admit_pending()
            got.fire(item)
        else:
            self._getters.append(got)
        return got

    def try_get(self) -> Any:
        """Non-blocking get. Returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self.total_got += 1
        self._admit_pending()
        return item

    # -- internals -----------------------------------------------------------
    def _accept(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            self.total_got += 1
            getter.fire(item)
        else:
            self._items.append(item)

    def _admit_pending(self) -> None:
        while self._pending_puts and not self.is_full:
            item = self._pending_puts.popleft()
            done = self._putters.popleft()
            self._accept(item)
            done.fire()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"Store({self.name!r}, {len(self._items)}/{cap})"


class CreditPool:
    """Explicit credit accounting for Tx/Rx backpressure.

    The LLC link layer (paper §IV-A4) protects the receive side by having
    Rx grant credits — one per empty ingress-queue slot — piggy-backed on
    response headers. Tx consumes one credit per transmitted unit and
    stalls at zero. This class models the Tx-side view.
    """

    def __init__(self, sim: Simulator, initial: int, name: str = "credits"):
        if initial < 0:
            raise SimulationError(f"initial credits must be >= 0: {initial}")
        self.sim = sim
        self.name = name
        self.credits = initial
        self.initial = initial
        self._waiters: Deque[Signal] = deque()
        self.total_consumed = 0
        self.total_granted = 0
        self.stall_count = 0

    def consume(self, amount: int = 1) -> Signal:
        """Waitable consume of ``amount`` credits (fires when satisfied)."""
        if amount < 1:
            raise SimulationError(f"consume amount must be >= 1: {amount}")
        done = Signal(name=f"{self.name}.consume", oneshot=True)
        if not self._waiters and self.credits >= amount:
            self.credits -= amount
            self.total_consumed += amount
            done.fire()
        else:
            self.stall_count += 1
            self._waiters.append((done, amount))  # type: ignore[arg-type]
        return done

    def try_consume(self, amount: int = 1) -> bool:
        """Non-blocking consume; False when not enough credits."""
        if self._waiters or self.credits < amount:
            return False
        self.credits -= amount
        self.total_consumed += amount
        return True

    def grant(self, amount: int = 1) -> None:
        """Rx returns ``amount`` credits (piggy-backed grant)."""
        if amount < 0:
            raise SimulationError(f"grant amount must be >= 0: {amount}")
        self.credits += amount
        self.total_granted += amount
        while self._waiters:
            done, needed = self._waiters[0]  # type: ignore[misc]
            if self.credits < needed:
                break
            self._waiters.popleft()
            self.credits -= needed
            self.total_consumed += needed
            done.fire()

    def reset(self, amount: int) -> None:
        """Restore the pool to ``amount`` credits (link bring-up).

        Only legal while no consumer is blocked — resetting with waiters
        would strand them.
        """
        if self._waiters:
            raise SimulationError(
                f"{self.name}: reset with {len(self._waiters)} waiters"
            )
        self.credits = amount

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CreditPool({self.name!r}, {self.credits} credits)"
