"""Sharded simulation: rack domains under conservative time sync.

One :class:`~repro.sim.engine.Simulator` owns one global clock, which
pins a whole run to one core no matter how many racks it models. This
module partitions a run into **domains** — each with its own simulator
(the PR 1 fast path, unchanged) — that exchange timestamped messages
through the coordinator, Chandy–Misra style:

* Time is cut into fixed **windows** of width ``lookahead``. Window
  ``k`` covers ``((k)·W, (k+1)·W]``; ends are computed by
  multiplication (never accumulation) so every process sees the exact
  same float boundaries.
* Every inter-domain message must arrive at least ``lookahead`` after
  it was sent. A message sent during window ``k`` (``send_t > k·W``)
  therefore has ``deliver_t > (k+1)·W`` — it can never land inside a
  window a neighbor has already simulated. That is the conservative
  safety invariant; :class:`SyncError` is raised loudly if a program
  violates it.
* Each round, every domain advances to the same window end with its
  sorted inbox; the coordinator then routes the round's outboxes.
  Inboxes are sorted by the stable ``(deliver_t, src, seq)`` key, so
  delivery order is independent of which shard produced a message
  first — results are deterministic regardless of scheduling, and the
  parallel path is byte-identical to the serial one by construction.

Parallelism uses one single-worker ``ProcessPoolExecutor`` per shard
(domain ``i`` lives on shard ``i % jobs``). A single-worker pool pins
its domains to one long-lived process, whose module state holds the
(unpicklable) live simulators between rounds; only the small message
lists cross process boundaries. Worker bootstrap (backend pinning,
tracing hygiene) is shared with the sweep pool via
:mod:`repro.sweep.bootstrap`.

Domain programs are built from ``(target, kwargs)`` pairs, where
``target`` is a ``py:module:function`` string resolved with
:func:`repro.sweep.resolve_target` (builders must be importable in
worker processes). A program must provide::

    advance(window_end, inbox) -> list[DomainMessage]   # one window
    finalize() -> dict                                  # artifacts

``advance`` schedules each inbox message at its ``deliver_t``, runs
its simulator to ``window_end``, and returns the messages emitted
during the window — each stamped with a per-domain monotonically
increasing ``seq``. ``finalize`` returns a picklable, deterministic
artifact (no wall-clock values).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .engine import SimulationError

__all__ = ["DomainMessage", "DomainCoordinator", "SyncError"]


class SyncError(SimulationError):
    """Conservative-synchronization contract violation."""

    code = "sim/domain-sync"


class DomainMessage:
    """One timestamped inter-domain message.

    ``src``/``dst`` are domain indices; ``seq`` is the sender's own
    monotonically increasing counter (the tie-breaker that makes
    same-timestamp delivery deterministic); ``payload`` must be a
    small picklable value.
    """

    __slots__ = ("src", "dst", "send_t", "deliver_t", "seq", "kind",
                 "payload")

    def __init__(self, src: int, dst: int, send_t: float, deliver_t: float,
                 seq: int, kind: str, payload: Any = None):
        self.src = src
        self.dst = dst
        self.send_t = send_t
        self.deliver_t = deliver_t
        self.seq = seq
        self.kind = kind
        self.payload = payload

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.deliver_t, self.src, self.seq)

    def __getstate__(self):
        return (self.src, self.dst, self.send_t, self.deliver_t, self.seq,
                self.kind, self.payload)

    def __setstate__(self, state):
        (self.src, self.dst, self.send_t, self.deliver_t, self.seq,
         self.kind, self.payload) = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DomainMessage({self.kind!r}, {self.src}->{self.dst}, "
            f"t={self.send_t:g}->{self.deliver_t:g}, seq={self.seq})"
        )


def _build_program(target: str, kwargs: Dict[str, Any]) -> Any:
    from ..sweep.engine import resolve_target

    return resolve_target(target)(**kwargs)


# -- worker-process side ----------------------------------------------------------

#: Live domain programs hosted by this worker process. Single-worker
#: executors guarantee every task for a shard runs in the same process,
#: so programs (holding unpicklable simulator state) persist here
#: between rounds.
_WORKER_PROGRAMS: Dict[int, Any] = {}


def _shard_build(items: List[Tuple[int, str, Dict[str, Any]]]) -> float:
    started = time.perf_counter()
    for index, target, kwargs in items:
        _WORKER_PROGRAMS[index] = _build_program(target, kwargs)
    return time.perf_counter() - started


def _shard_advance(
    indices: List[int],
    window_end: float,
    inboxes: List[List[DomainMessage]],
) -> Tuple[List[List[DomainMessage]], float]:
    started = time.perf_counter()
    outboxes = [
        _WORKER_PROGRAMS[index].advance(window_end, inbox)
        for index, inbox in zip(indices, inboxes)
    ]
    return outboxes, time.perf_counter() - started


def _shard_finalize(indices: List[int]) -> List[Dict[str, Any]]:
    artifacts = [_WORKER_PROGRAMS[index].finalize() for index in indices]
    for index in indices:
        del _WORKER_PROGRAMS[index]
    return artifacts


# -- shard drivers ----------------------------------------------------------------


class _LocalShard:
    """All domains in-process: the serial reference semantics."""

    def __init__(self, indices: List[int],
                 builders: Sequence[Tuple[str, Dict[str, Any]]]):
        self.indices = indices
        self._items = [(i, builders[i][0], builders[i][1]) for i in indices]
        self.busy_s = 0.0

    def start_build(self) -> None:
        self.busy_s += _shard_build(self._items)

    def finish_build(self) -> None:
        pass

    def start_advance(self, window_end: float,
                      inboxes: List[List[DomainMessage]]) -> None:
        self._result = _shard_advance(self.indices, window_end, inboxes)

    def finish_advance(self) -> List[List[DomainMessage]]:
        outboxes, elapsed = self._result
        self.busy_s += elapsed
        return outboxes

    def finalize(self) -> List[Dict[str, Any]]:
        return _shard_finalize(self.indices)

    def shutdown(self) -> None:
        pass


class _PoolShard:
    """One shard of domains pinned to one single-worker pool process."""

    def __init__(self, indices: List[int],
                 builders: Sequence[Tuple[str, Dict[str, Any]]]):
        from concurrent.futures import ProcessPoolExecutor

        from ..sweep.bootstrap import pool_initargs, pool_worker_init

        self.indices = indices
        self._items = [(i, builders[i][0], builders[i][1]) for i in indices]
        self.busy_s = 0.0
        self.pool = ProcessPoolExecutor(
            max_workers=1,
            initializer=pool_worker_init,
            initargs=pool_initargs(),
        )
        self._future = None

    def start_build(self) -> None:
        self._future = self.pool.submit(_shard_build, self._items)

    def finish_build(self) -> None:
        self.busy_s += self._future.result()

    def start_advance(self, window_end: float,
                      inboxes: List[List[DomainMessage]]) -> None:
        self._future = self.pool.submit(
            _shard_advance, self.indices, window_end, inboxes
        )

    def finish_advance(self) -> List[List[DomainMessage]]:
        outboxes, elapsed = self._future.result()
        self.busy_s += elapsed
        return outboxes

    def finalize(self) -> List[Dict[str, Any]]:
        return self.pool.submit(_shard_finalize, self.indices).result()

    def shutdown(self) -> None:
        self.pool.shutdown()


# -- coordinator ------------------------------------------------------------------


class DomainCoordinator:
    """Runs domain programs in lockstep windows, routing their messages.

    ``builders`` is one ``(target, kwargs)`` pair per domain (domain
    index = list position). ``lookahead`` is the window width — the
    minimum inter-domain message latency. ``horizon`` is the sim time
    up to which every domain must advance; the coordinator keeps
    running whole windows past it while messages remain in flight
    (bounded by ``max_drain_rounds``).

    ``jobs`` > 1 shards the domains over single-worker process pools;
    the results are byte-identical to ``jobs=1`` because both paths
    execute the exact same (window, sorted-inbox) sequence per domain.
    """

    def __init__(
        self,
        builders: Sequence[Tuple[str, Dict[str, Any]]],
        lookahead: float,
        horizon: float,
        jobs: int = 1,
        max_drain_rounds: int = 64,
    ):
        if not builders:
            raise ValueError("need at least one domain builder")
        if lookahead <= 0:
            raise ValueError(f"lookahead must be > 0, got {lookahead!r}")
        if horizon < 0:
            raise ValueError(f"horizon must be >= 0, got {horizon!r}")
        self.builders = list(builders)
        self.lookahead = float(lookahead)
        self.horizon = float(horizon)
        self.jobs = max(1, int(jobs))
        self.max_drain_rounds = max_drain_rounds
        self.rounds = 0
        self.messages_routed = 0
        self.wall_s = 0.0
        self.busy_s = 0.0

    # -- sharding ---------------------------------------------------------------
    def _make_shards(self) -> List[Any]:
        count = len(self.builders)
        jobs = min(self.jobs, count)
        if jobs <= 1:
            return [_LocalShard(list(range(count)), self.builders)]
        shards = []
        for shard_index in range(jobs):
            indices = [i for i in range(count) if i % jobs == shard_index]
            shards.append(_PoolShard(indices, self.builders))
        return shards

    # -- execution --------------------------------------------------------------
    def run(self) -> Dict[str, Any]:
        started = time.perf_counter()
        count = len(self.builders)
        shards = self._make_shards()
        try:
            for shard in shards:
                shard.start_build()
            for shard in shards:
                shard.finish_build()

            pending: List[List[DomainMessage]] = [[] for _ in range(count)]
            in_flight = 0
            round_index = 0
            max_rounds = (
                int(self.horizon / self.lookahead) + 1 + self.max_drain_rounds
            )
            while in_flight or round_index * self.lookahead < self.horizon:
                if round_index >= max_rounds:
                    raise SyncError(
                        f"{in_flight} message(s) still in flight after "
                        f"{round_index} rounds (horizon {self.horizon:g}, "
                        f"lookahead {self.lookahead:g}) — drain did not "
                        f"converge"
                    )
                # Exact same float for every shard: multiply, never
                # accumulate.
                window_end = (round_index + 1) * self.lookahead

                inboxes: List[List[DomainMessage]] = []
                for domain in range(count):
                    due = [m for m in pending[domain]
                           if m.deliver_t <= window_end]
                    if due:
                        pending[domain] = [
                            m for m in pending[domain]
                            if m.deliver_t > window_end
                        ]
                        due.sort(key=DomainMessage.sort_key)
                        in_flight -= len(due)
                    inboxes.append(due)

                for shard in shards:
                    shard.start_advance(
                        window_end, [inboxes[i] for i in shard.indices]
                    )
                outboxes: Dict[int, List[DomainMessage]] = {}
                for shard in shards:
                    for index, outbox in zip(
                        shard.indices, shard.finish_advance()
                    ):
                        outboxes[index] = outbox

                for domain in range(count):
                    for message in outboxes[domain]:
                        self._validate(message, domain, window_end, count)
                        pending[message.dst].append(message)
                        in_flight += 1
                        self.messages_routed += 1
                round_index += 1

            self.rounds = round_index
            artifacts: List[Optional[Dict[str, Any]]] = [None] * count
            for shard in shards:
                for index, artifact in zip(shard.indices, shard.finalize()):
                    artifacts[index] = artifact
        finally:
            for shard in shards:
                shard.shutdown()

        self.busy_s = sum(shard.busy_s for shard in shards)
        self.wall_s = time.perf_counter() - started
        return {
            "artifacts": artifacts,
            "rounds": self.rounds,
            "messages": self.messages_routed,
            # Provenance only — callers must keep wall-clock values and
            # the job count OUT of byte-compared artifacts.
            "jobs": min(self.jobs, count),
            "wall_s": self.wall_s,
            "busy_s": self.busy_s,
        }

    def _validate(self, message: DomainMessage, domain: int,
                  window_end: float, count: int) -> None:
        if message.src != domain:
            raise SyncError(
                f"domain {domain} emitted a message stamped src="
                f"{message.src}"
            )
        if not 0 <= message.dst < count:
            raise SyncError(
                f"message from domain {domain} addressed to unknown "
                f"domain {message.dst}"
            )
        # One-ulp slop: (send_t + lookahead) - send_t can round a hair
        # below lookahead. Safety rests on the window check below, not
        # on this contract check, so tolerate float rounding here.
        latency = message.deliver_t - message.send_t
        if latency < self.lookahead * (1.0 - 1e-12) - 1e-12:
            raise SyncError(
                f"message {message.kind!r} from domain {domain} has "
                f"latency {latency:g} < lookahead {self.lookahead:g}"
            )
        if message.deliver_t <= window_end:
            raise SyncError(
                f"message {message.kind!r} from domain {domain} would "
                f"arrive at {message.deliver_t:g}, inside the window "
                f"ending {window_end:g} its neighbor already simulated"
            )
