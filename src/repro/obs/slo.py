"""Declarative SLO specs evaluated against the metrics registry.

A spec is one line of grammar::

    name: metric{label=value,...} op threshold

for example::

    remote-read-p99:  endpoint.rtt_p99_s{endpoint=cpu0} <= 2.5e-6
    failover-fast:    health.last_recovery_time_s{component=health} <= 1e-5
    goodput-floor:    link.delivered_frames{link=fabric0} >= 1000

``op`` is one of ``<= < >= > ==``; ``metric`` is the registry's dotted
name; the label block is optional and must match the series' label set
exactly (the same qualified-name convention as
``MetricsRegistry.snapshot()``).

The engine evaluates specs against a registry snapshot — at run end,
or live on a sim-time cadence via :func:`watch`. A missing metric is a
breach (an SLO over a series that never materialized is itself a
signal, not a pass). Breaches emit ``slo.breach`` events into the
structured event log when it is enabled, carrying the spec, observed
value, threshold, and any caller-provided correlation context — which
is how a CI chaos run links "recovery took too long" back to the
specific failover event. :meth:`SloReport.exit_code` gives CI its
non-zero exit mode.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from . import events as _events
from .metrics import MetricsRegistry, qualified_name

__all__ = [
    "SloSpec",
    "SloResult",
    "SloReport",
    "SloEngine",
    "parse_slo_specs",
]

_SPEC_RE = re.compile(
    r"""^\s*
        (?P<name>[A-Za-z0-9_.\-]+)\s*:\s*
        (?P<metric>[A-Za-z0-9_.\-]+)\s*
        (?:\{(?P<labels>[^}]*)\})?\s*
        (?P<op><=|>=|==|<|>)\s*
        (?P<threshold>[^\s]+)\s*$""",
    re.VERBOSE,
)

_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    "<": lambda value, threshold: value < threshold,
    ">=": lambda value, threshold: value >= threshold,
    ">": lambda value, threshold: value > threshold,
    "==": lambda value, threshold: value == threshold,
}


@dataclass(frozen=True)
class SloSpec:
    """One parsed objective: ``name: metric{labels} op threshold``."""

    name: str
    metric: str
    labels: Tuple[Tuple[str, str], ...]
    op: str
    threshold: float

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        match = _SPEC_RE.match(text)
        if match is None:
            raise ValueError(f"bad SLO spec: {text!r}")
        label_block = match.group("labels")
        labels: List[Tuple[str, str]] = []
        if label_block and label_block.strip():
            for pair in label_block.split(","):
                if "=" not in pair:
                    raise ValueError(
                        f"bad label {pair!r} in SLO spec: {text!r}"
                    )
                key, _eq, value = pair.partition("=")
                labels.append((key.strip(), value.strip().strip('"')))
        try:
            threshold = float(match.group("threshold"))
        except ValueError:
            raise ValueError(
                f"bad threshold {match.group('threshold')!r} "
                f"in SLO spec: {text!r}"
            )
        return cls(
            name=match.group("name"),
            metric=match.group("metric"),
            labels=tuple(sorted(labels)),
            op=match.group("op"),
            threshold=threshold,
        )

    @property
    def qualified(self) -> str:
        """The snapshot key this spec reads."""
        return qualified_name(self.metric, self.labels)

    def check(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "labels": dict(self.labels),
            "op": self.op,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class SloResult:
    """One spec's verdict against one snapshot."""

    spec: SloSpec
    ok: bool
    value: Optional[float]
    reason: str

    def describe(self) -> Dict[str, Any]:
        record = self.spec.describe()
        record.update(
            {"ok": self.ok, "value": self.value, "reason": self.reason}
        )
        return record


class SloReport:
    """All verdicts from one evaluation pass."""

    def __init__(self, results: List[SloResult], now: float):
        self.results = results
        self.now = now

    @property
    def breaches(self) -> List[SloResult]:
        return [result for result in self.results if not result.ok]

    @property
    def ok(self) -> bool:
        return not self.breaches

    def exit_code(self) -> int:
        """0 when every objective held; 1 otherwise (for CI)."""
        return 0 if self.ok else 1

    def describe(self) -> Dict[str, Any]:
        return {
            "t": self.now,
            "ok": self.ok,
            "total": len(self.results),
            "breached": len(self.breaches),
            "results": [result.describe() for result in self.results],
        }

    def render(self) -> str:
        lines = [f"SLO report @ t={self.now:g}s: "
                 f"{len(self.results) - len(self.breaches)}/"
                 f"{len(self.results)} ok"]
        for result in self.results:
            verdict = "ok    " if result.ok else "BREACH"
            spec = result.spec
            shown = "absent" if result.value is None else f"{result.value:g}"
            lines.append(
                f"  [{verdict}] {spec.name}: {spec.qualified} "
                f"{spec.op} {spec.threshold:g} (observed {shown})"
            )
        return "\n".join(lines)


class SloEngine:
    """Evaluates a fixed set of specs against registry snapshots."""

    def __init__(self, specs: Sequence[SloSpec]):
        self.specs = list(specs)

    def evaluate(
        self,
        registry: MetricsRegistry,
        now: float = 0.0,
        context: Optional[Dict[str, Any]] = None,
    ) -> SloReport:
        """One evaluation pass; breaches emit ``slo.breach`` events.

        ``context`` adds correlation fields (attachment ids, scenario
        names) to every breach event so the journal links the breach
        to the run that caused it.
        """
        snapshot = registry.snapshot()
        results = []
        for spec in self.specs:
            value = snapshot.get(spec.qualified)
            if value is None:
                ok = False
                reason = "metric absent from registry"
            else:
                ok = spec.check(value)
                reason = "within objective" if ok else (
                    f"observed {value:g} violates "
                    f"{spec.op} {spec.threshold:g}"
                )
            results.append(SloResult(spec, ok, value, reason))
            if not ok and _events.ENABLED:
                _events.emit(
                    now,
                    "slo.breach",
                    slo=spec.name,
                    metric=spec.qualified,
                    op=spec.op,
                    threshold=spec.threshold,
                    value=value,
                    reason=reason,
                    **(context or {}),
                )
        return SloReport(results, now)

    def watch(
        self,
        sim: Any,
        registry: MetricsRegistry,
        period_s: float,
        ticks: int,
        on_report: Optional[Any] = None,
    ) -> List[SloReport]:
        """Schedule ``ticks`` live evaluations every ``period_s``.

        Bounded by design: a fixed tick count means the watcher never
        keeps the event loop alive on its own, so ``sim.run()`` still
        drains. Reports accumulate into the returned list as the sim
        reaches each tick; breaches feed the event log exactly like
        end-of-run evaluation.
        """
        if period_s <= 0:
            raise ValueError("watch period must be > 0")
        if ticks < 1:
            raise ValueError("watch ticks must be >= 1")
        reports: List[SloReport] = []

        def _tick() -> None:
            report = self.evaluate(registry, now=sim.now)
            reports.append(report)
            if on_report is not None:
                on_report(report)
            if len(reports) < ticks:
                sim.schedule(period_s, _tick)

        sim.schedule(period_s, _tick)
        return reports


def parse_slo_specs(lines: Sequence[str]) -> List[SloSpec]:
    """Parse spec lines, skipping blanks and ``#`` comments."""
    specs = []
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        specs.append(SloSpec.parse(stripped))
    return specs
