"""Scheduled fault campaigns: macro-faults driven by the sim clock.

A *campaign* is a declarative description of a macro-fault (a cable
dies, a link flaps, a lender browns out or crashes) that, when armed,
schedules deterministic state changes on a set of
:class:`~repro.net.faults.FaultInjector` instances through the
simulator's event queue. Campaigns are plain frozen dataclasses: the
same campaign armed at the same sim time with the same seeded RNG
produces the same event sequence, so chaos runs are reproducible and
cacheable by :mod:`repro.sweep`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Type

from ..errors import ReproError
from ..net.faults import FaultInjector
from ..obs import events as _events
from ..sim.rng import SeededRNG

__all__ = [
    "FaultCampaign",
    "LinkKill",
    "LinkFlap",
    "Brownout",
    "LenderCrash",
    "UnknownCampaignError",
    "CampaignParamError",
    "CampaignParam",
    "CAMPAIGNS",
    "CAMPAIGN_PARAMS",
    "campaign_catalogue",
    "validate_campaign_params",
    "make_campaign",
    "ensure_injector",
    "make_rest_fault_hook",
]


class UnknownCampaignError(ReproError, ValueError):
    """Campaign name not in the catalogue."""

    code = "resilience/unknown-campaign"


class CampaignParamError(UnknownCampaignError):
    """Campaign parameter unknown, mistyped, or out of range.

    Subclasses :class:`UnknownCampaignError` so callers that treated
    every catalogue mismatch as one error class keep working; the
    distinct ``code`` still routes to 400 with a sharper slug.
    """

    code = "resilience/bad-campaign-params"


@dataclass(frozen=True)
class CampaignParam:
    """Typed schema of one campaign parameter.

    This is the single source of truth for what a campaign accepts:
    the DSE design builder validates factor levels against it, the
    REST fault hook validates POST bodies with it, and
    ``GET /v1/faults`` serves it as the discoverable catalogue.
    """

    name: str
    kind: str  # "float" (all campaign knobs today are seconds/probabilities)
    default: float
    minimum: float
    maximum: float
    doc: str

    def validate(self, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise CampaignParamError(
                f"parameter {self.name!r} must be a number, "
                f"got {value!r}"
            )
        value = float(value)
        if not self.minimum <= value <= self.maximum:
            raise CampaignParamError(
                f"parameter {self.name!r}={value!r} outside "
                f"[{self.minimum!r}, {self.maximum!r}]"
            )
        return value

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "default": self.default,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "doc": self.doc,
        }


_AT_S = CampaignParam(
    "at_s", "float", 0.0, 0.0, 10.0,
    "sim delay (seconds) from arming to the fault taking effect",
)
_DURATION_S = CampaignParam(
    "duration_s", "float", 10e-6, 0.0, 10.0,
    "how long the degraded window lasts before restoration",
)
_BROWNOUT_DURATION_S = CampaignParam(
    "duration_s", "float", 50e-6, 0.0, 10.0,
    "how long the degraded window lasts before restoration",
)
_DROP_PROBABILITY = CampaignParam(
    "drop_probability", "float", 0.2, 0.0, 1.0,
    "per-frame Bernoulli drop probability during the window",
)

#: name -> ordered parameter schemas; consumed by the DSE design
#: builder, the REST fault hook, and ``GET /v1/faults``.
CAMPAIGN_PARAMS: Dict[str, Tuple[CampaignParam, ...]] = {
    "link-kill": (_AT_S,),
    "link-flap": (_AT_S, _DURATION_S),
    "brownout": (_AT_S, _BROWNOUT_DURATION_S, _DROP_PROBABILITY),
    "lender-crash": (_AT_S,),
}


def validate_campaign_params(name: str, params: Dict[str, Any]) -> Dict[str, float]:
    """Check ``params`` against the campaign's schema table.

    Returns the validated (float-coerced) parameters. Raises
    :class:`UnknownCampaignError` for an unknown campaign and
    :class:`CampaignParamError` for unknown names, wrong types, or
    out-of-range values.
    """
    if name not in CAMPAIGN_PARAMS:
        raise UnknownCampaignError(
            f"unknown campaign {name!r} "
            f"(have: {', '.join(sorted(CAMPAIGN_PARAMS))})"
        )
    schema = {spec.name: spec for spec in CAMPAIGN_PARAMS[name]}
    unknown = sorted(set(params) - set(schema))
    if unknown:
        raise CampaignParamError(
            f"campaign {name!r} does not take {', '.join(unknown)} "
            f"(takes: {', '.join(spec.name for spec in CAMPAIGN_PARAMS[name])})"
        )
    return {
        key: schema[key].validate(value) for key, value in params.items()
    }


def campaign_catalogue() -> List[Dict[str, Any]]:
    """JSON-able campaign catalogue with parameter schemas."""
    entries = []
    for name in sorted(CAMPAIGNS):
        cls = CAMPAIGNS[name]
        entries.append({
            "name": name,
            "doc": (cls.__doc__ or "").strip().splitlines()[0],
            "params": [
                spec.describe() for spec in CAMPAIGN_PARAMS[name]
            ],
        })
    return entries


def ensure_injector(
    link, rng: Optional[SeededRNG] = None
) -> FaultInjector:
    """Install (or return) the fault injector on a serial link.

    Links are built clean; campaigns graft the injector on after the
    fact so fault domains can be targeted per-host at runtime.
    """
    if getattr(link, "faults", None) is None:
        link.faults = FaultInjector(rng=rng)
    return link.faults


@dataclass(frozen=True)
class FaultCampaign:
    """Base: a fault armed ``at_s`` seconds of *sim delay* from now."""

    at_s: float = 0.0

    #: Catalogue key (subclasses override).
    name = "noop"

    def arm(self, sim, injectors: Iterable[FaultInjector],
            agent=None) -> None:
        raise NotImplementedError

    def describe(self) -> Dict:
        return {"campaign": self.name, "at_s": self.at_s}

    def _fire(self, sim, kind: str, fields: Dict, action, *args):
        """Run a scheduled fault action, journaling it at fire time.

        The event is emitted inside the scheduled call — not at arm
        time — so the journal records the sim-time the fault actually
        took effect, in event order with everything else. Schedule
        order and the action itself are unchanged, so seeded chaos
        runs stay byte-identical. ``fields`` ride along positionally
        because ``sim.schedule`` forwards positional args only.
        """
        action(*args)
        if _events.ENABLED:
            _events.emit(sim.now, kind, campaign=self.name, **fields)


@dataclass(frozen=True)
class LinkKill(FaultCampaign):
    """Permanent link death: every frame drops from ``at_s`` on."""

    name = "link-kill"

    def arm(self, sim, injectors, agent=None) -> None:
        for injector in injectors:
            sim.schedule(self.at_s, self._fire, sim, "fault.link_down",
                         {}, injector.set_down, True)


@dataclass(frozen=True)
class LinkFlap(FaultCampaign):
    """Transient outage: down at ``at_s``, back up ``duration_s`` later."""

    duration_s: float = 10e-6
    name = "link-flap"

    def arm(self, sim, injectors, agent=None) -> None:
        for injector in injectors:
            sim.schedule(self.at_s, self._fire, sim, "fault.link_down",
                         {}, injector.set_down, True)
            sim.schedule(self.at_s + self.duration_s, self._fire, sim,
                         "fault.link_up", {}, injector.set_down, False)

    def describe(self) -> Dict:
        return {**super().describe(), "duration_s": self.duration_s}


@dataclass(frozen=True)
class Brownout(FaultCampaign):
    """Degraded window: Bernoulli frame loss at ``drop_probability``."""

    duration_s: float = 50e-6
    drop_probability: float = 0.2
    name = "brownout"

    def arm(self, sim, injectors, agent=None) -> None:
        for injector in injectors:
            previous = injector.drop_probability
            sim.schedule(self.at_s, self._fire, sim, "fault.brownout",
                         {"drop_probability": self.drop_probability},
                         injector.set_drop_probability,
                         self.drop_probability)
            sim.schedule(self.at_s + self.duration_s, self._fire, sim,
                         "fault.restored",
                         {"drop_probability": previous},
                         injector.set_drop_probability, previous)

    def describe(self) -> Dict:
        return {
            **super().describe(),
            "duration_s": self.duration_s,
            "drop_probability": self.drop_probability,
        }


@dataclass(frozen=True)
class LenderCrash(FaultCampaign):
    """Whole-node death: links go dark and the agent stops granting."""

    name = "lender-crash"

    def arm(self, sim, injectors, agent=None) -> None:
        for injector in injectors:
            sim.schedule(self.at_s, self._fire, sim, "fault.link_down",
                         {}, injector.set_down, True)
        if agent is not None:
            def crash():
                agent.crashed = True
            sim.schedule(self.at_s, self._fire, sim, "fault.lender_crash",
                         {"host": agent.hostname}, crash)


CAMPAIGNS: Dict[str, Type[FaultCampaign]] = {
    cls.name: cls for cls in (LinkKill, LinkFlap, Brownout, LenderCrash)
}


def make_campaign(name: str, **params) -> FaultCampaign:
    """Build a campaign from its catalogue name and parameters.

    Parameters are validated against :data:`CAMPAIGN_PARAMS` first, so
    a typo'd name or out-of-range value fails with a typed error
    before any dataclass construction.
    """
    validated = validate_campaign_params(name, params)
    return CAMPAIGNS[name](**validated)


def make_rest_fault_hook(testbed, seed: int = 0):
    """Fault hook for ``POST /v1/faults`` on :class:`RestApi`.

    Resolves the target attachment, arms the named campaign against the
    *lender's* fault domain (its serial links), and returns the
    campaign description for the HTTP response.

    RNG-stream hygiene: each POST derives a fresh per-campaign stream
    from ``(seed, attachment_id, call index)`` — the injectors on the
    target links are reseeded with it, so two identical POSTs never
    silently replay the same Bernoulli draws, while the whole sequence
    of calls stays deterministic for a given hook seed. The derived
    stream label is echoed in the response as ``rng_stream``.
    """
    root = SeededRNG(seed).derive("rest-faults")
    calls = itertools.count()

    def hook(name: str, attachment_id: int, params: Dict) -> Dict:
        attachment = testbed.plane.attachment(
            attachment_id, token=testbed.admin_token
        )
        campaign = make_campaign(name, **params)
        index = next(calls)
        stream = root.derive(f"{attachment_id}/{index}")
        links = testbed.links_of(attachment.memory_host)
        injectors = []
        for link in links:
            injector = ensure_injector(link)
            injector.reseed(stream.derive(link.name))
            injectors.append(injector)
        agent = testbed.node(attachment.memory_host).agent
        campaign.arm(testbed.sim, injectors, agent=agent)
        return {
            **campaign.describe(),
            "attachment": attachment_id,
            "target_host": attachment.memory_host,
            "links": [link.name for link in links],
            "rng_stream": stream.label,
            "call_index": index,
        }

    return hook
