"""Bounded structured event log (JSON-lines journal).

Where ``repro.obs.trace`` answers *where did the time go*, the event
log answers *what happened*: attach/detach/steal on the control plane,
fault injections and failovers in the resilience layer, retry storms
at the endpoints. Each event is a flat record carrying monotonic
sim-time, a global sequence number, a dotted ``kind``, and free-form
correlation fields (attachment ids, txn ids, network ids) that link it
to trace spans and metric label sets.

Determinism: events record **sim-time only** — never wall-clock — so a
seeded run emits a byte-identical journal every time, and the chaos CI
job can diff two runs with ``cmp``.

Same guard-flag pattern as ``trace``: logging is off by default, and
when off each instrumented call site costs one module-attribute load
plus a falsy branch. The journal is bounded (a deque) so an
instrumented long run cannot grow without limit; ``total`` and
``evicted`` report how much history was dropped.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = [
    "Event",
    "EventLog",
    "enable_events",
    "disable_events",
    "active_event_log",
    "event_logging",
    "capture_into",
    "emit",
    "merge_event_streams",
    "validate_event_jsonl",
]


class Event:
    """One journal entry: sequence number, sim-time, kind, fields."""

    __slots__ = ("seq", "t", "kind", "fields")

    def __init__(self, seq: int, t: float, kind: str, fields: Dict[str, Any]):
        self.seq = seq
        self.t = t
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"seq": self.seq, "t": self.t, "kind": self.kind}
        record.update(self.fields)
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(seq={self.seq}, t={self.t!r}, kind={self.kind!r})"


class EventLog:
    """Bounded journal of :class:`Event` records.

    ``capacity`` bounds resident history; older events are evicted
    FIFO. ``total`` counts every event ever emitted, so ``evicted``
    (``total - len(log)``) makes silent truncation visible in
    artifacts instead of pretending the journal is complete.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[Event] = deque(maxlen=capacity)
        self.total = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def evicted(self) -> int:
        return self.total - len(self._events)

    def emit(self, now: float, kind: str, **fields: Any) -> Event:
        event = Event(self._seq, float(now), kind, fields)
        self._seq += 1
        self.total += 1
        self._events.append(event)
        return event

    def find(self, kind: Optional[str] = None, **fields: Any) -> List[Event]:
        """Events matching a kind and/or exact field values."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if any(event.fields.get(k) != v for k, v in fields.items()):
                continue
            out.append(event)
        return out

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [event.as_dict() for event in self._events]

    def to_jsonl(self) -> str:
        lines = [
            json.dumps(event.as_dict(), sort_keys=True)
            for event in self._events
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())


def validate_event_jsonl(text: str) -> int:
    """Validate a JSON-lines journal; returns the event count.

    Checks each line is a JSON object with ``seq``/``t``/``kind``,
    that sequence numbers strictly increase, and that sim-time is
    non-negative and non-decreasing. An empty journal is valid (a run
    with logging enabled but nothing to report) and returns 0.
    """
    count = 0
    last_seq = None
    last_t = None
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {number}: not valid JSON ({exc})")
        if not isinstance(record, dict):
            raise ValueError(f"line {number}: event is not an object")
        for key in ("seq", "t", "kind"):
            if key not in record:
                raise ValueError(f"line {number}: missing {key!r}")
        seq = record["seq"]
        if not isinstance(seq, int) or isinstance(seq, bool):
            raise ValueError(f"line {number}: seq is not an integer")
        if last_seq is not None and seq <= last_seq:
            raise ValueError(
                f"line {number}: seq {seq} does not increase past {last_seq}"
            )
        t = record["t"]
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            raise ValueError(f"line {number}: bad sim-time {t!r}")
        if last_t is not None and t < last_t:
            raise ValueError(
                f"line {number}: sim-time {t} goes backwards from {last_t}"
            )
        if not isinstance(record["kind"], str) or not record["kind"]:
            raise ValueError(f"line {number}: kind is not a non-empty string")
        last_seq = seq
        last_t = t
        count += 1
    return count


# -- module-level switch (same pattern as trace) ----------------------------------

#: Hot-path guard. Instrumented call sites check this before touching
#: anything else, so disabled logging costs one global load + branch.
ENABLED = False

_LOG: Optional[EventLog] = None


def enable_events(capacity: int = 4096) -> EventLog:
    """Install a fresh event log and enable emission."""
    global ENABLED, _LOG
    _LOG = EventLog(capacity=capacity)
    ENABLED = True
    return _LOG


def disable_events() -> Optional[EventLog]:
    """Disable emission; returns the log for export."""
    global ENABLED, _LOG
    log = _LOG
    ENABLED = False
    _LOG = None
    return log


def active_event_log() -> Optional[EventLog]:
    return _LOG


class event_logging:
    """Context manager for scoped logging: yields the EventLog."""

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self.log: Optional[EventLog] = None

    def __enter__(self) -> EventLog:
        self.log = enable_events(capacity=self.capacity)
        return self.log

    def __exit__(self, *exc_info: Any) -> None:
        disable_events()


def emit(now: float, kind: str, **fields: Any) -> None:
    """Emit an event if logging is enabled (guarded helper)."""
    if _LOG is not None:
        _LOG.emit(now, kind, **fields)


class capture_into:
    """Route emission into a caller-owned :class:`EventLog`, scoped.

    Unlike :class:`event_logging` (which installs a *fresh* log and
    discards the switch state), this temporarily redirects the module
    switch to an existing log and restores whatever was active on
    exit. It is how one process hosts several independent journals:
    the rack-domain coordinator (:mod:`repro.sim.domains`) runs many
    domains per worker and each domain swaps its own journal in for
    the duration of its window, so per-domain streams never
    interleave at the source.
    """

    def __init__(self, log: EventLog):
        self.log = log
        self._saved: Optional[tuple] = None

    def __enter__(self) -> EventLog:
        global ENABLED, _LOG
        self._saved = (ENABLED, _LOG)
        ENABLED = True
        _LOG = self.log
        return self.log

    def __exit__(self, *exc_info: Any) -> None:
        global ENABLED, _LOG
        ENABLED, _LOG = self._saved
        self._saved = None


def merge_event_streams(
    streams: Dict[str, List[Dict[str, Any]]]
) -> List[Dict[str, Any]]:
    """Merge per-source journals into one deterministically-ordered list.

    ``streams`` maps a source name (e.g. ``rack0``) to that source's
    event records (``Event.as_dict()`` shape). Multiple sources emit at
    the same sim time constantly — every rack sees the same trace
    timestamps — so plain ``(t,)`` ordering would leave the interleave
    to chance. The merge key is the stable triple ``(t, domain,
    domain_seq)``: time first, then source name, then the source's own
    emission order. Each merged record carries ``domain`` and
    ``domain_seq`` (the source's original ``seq``), and the global
    ``seq`` is re-assigned contiguously so the merged journal satisfies
    :func:`validate_event_jsonl` (strictly increasing seq,
    non-decreasing t).
    """
    tagged = []
    for domain in sorted(streams):
        for record in streams[domain]:
            merged = dict(record)
            merged["domain"] = domain
            merged["domain_seq"] = merged.pop("seq")
            tagged.append(merged)
    tagged.sort(key=lambda r: (r["t"], r["domain"], r["domain_seq"]))
    for seq, record in enumerate(tagged):
        record["seq"] = seq
    return tagged
