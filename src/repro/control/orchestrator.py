"""The ThymesisFlow control plane orchestrator — paper §IV-C.

Owns the four responsibilities the paper assigns to the control plane:
"i) system state maintenance, ii) configuration of ThymesisFlow
endpoints and possible intermediate switching layers, iii) system
access interface, and iv) security and access control."

The orchestrator never touches hardware directly: it plans over the
state graph, then pushes signed configurations to the per-host agents
(donor steal first, then compute attach) — mirroring the
Janusgraph-backed daemon of the prototype.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.flow import ActiveFlow, FlowTable
from ..errors import ReproError
from ..obs import events as _events
from ..mem.address import AddressError, AddressRange, AddressSpaceAllocator
from ..mem.numa import LOCAL_DISTANCE
from ..osmodel.agent import AttachPlan, StealGrant, ThymesisFlowAgent
from .graph import GraphError, StateGraph
from .planner import NoPathError, PathPlanner, PlannedPath
from .qos import NoHeadroomError, QosClass, QuotaLedger, TenantSpec
from .security import AccessControl, AuthError, Permission, PlaneTrust, Role
from .switching import SwitchDriver, extract_switch_hops

__all__ = [
    "ControlPlane",
    "Attachment",
    "OrchestrationError",
    "UnknownAttachmentError",
]

#: Unloaded single-hop remote access latency (measured prototype RTT).
BASE_REMOTE_LATENCY_S = 950e-9

#: Extra latency per intermediate switching layer on the planned path.
PER_SWITCH_HOP_S = 100e-9

#: Local DRAM latency used to derive SLIT distances for remote nodes.
LOCAL_DRAM_LATENCY_S = 85e-9

#: Remote NUMA node ids handed to compute kernels start here.
REMOTE_NODE_ID_BASE = 100


class OrchestrationError(ReproError, RuntimeError):
    """Attach/detach workflow failure."""

    code = "control/orchestration"


class UnknownAttachmentError(OrchestrationError):
    """Lookup of an attachment id that does not exist (or was detached).

    A dedicated type (and code) so the REST layer maps it to 404 from
    the status table instead of string-matching the message.
    """

    code = "control/unknown-attachment"


@dataclass
class _HostRecord:
    agent: ThymesisFlowAgent
    section_pool: AddressSpaceAllocator
    next_remote_node: int = REMOTE_NODE_ID_BASE


@dataclass
class Attachment:
    """One live disaggregated-memory attachment."""

    attachment_id: int
    compute_host: str
    memory_host: str
    size: int
    flow: ActiveFlow
    plan: AttachPlan
    grant: StealGrant
    path: PlannedPath
    section_run: AddressRange  # run in section-index space
    #: Owning tenant (multi-tenant planes only; admin attaches have none).
    tenant: Optional[str] = None
    #: The tenant's QoS class value at attach time.
    qos: Optional[str] = None

    def describe(self) -> Dict:
        body = {
            "id": self.attachment_id,
            "compute_host": self.compute_host,
            "memory_host": self.memory_host,
            "size": self.size,
            "network_id": self.flow.network_id,
            "bonded": self.flow.bonded,
            "channels": list(self.flow.channels),
            "numa_node": self.plan.numa_node_id,
            "sections": self.plan.section_indices,
        }
        if self.tenant is not None:
            body["tenant"] = self.tenant
            body["qos"] = self.qos
        return body


class ControlPlane:
    """Software-defined attach/detach of disaggregated memory."""

    def __init__(
        self,
        state: Optional[StateGraph] = None,
        acl: Optional[AccessControl] = None,
        trust: Optional[PlaneTrust] = None,
    ):
        self.state = state or StateGraph()
        self.planner = PathPlanner(self.state)
        self.acl = acl or AccessControl()
        self.trust = trust or PlaneTrust.generate()
        self.flows = FlowTable()
        self._hosts: Dict[str, _HostRecord] = {}
        self._switch_drivers: Dict[str, SwitchDriver] = {}
        self._attachments: Dict[int, Attachment] = {}
        self._next_attachment = 1
        #: Multi-tenant surface: per-tenant quotas + QoS classes. A
        #: plane with no registered tenants behaves exactly as before
        #: (every credential is unmetered).
        self.quotas = QuotaLedger()
        self._tenant_tokens: Dict[str, str] = {}
        #: Fraction of total donor capacity kept free for guaranteed
        #: tenants; best-effort attaches that would dip below it are
        #: denied with ``control/no-headroom`` (503). 0 disables.
        self.best_effort_reserve = 0.0
        self.audit_log: List[str] = []
        #: Sim-time source for structured events. The plane itself has
        #: no simulator reference; testbeds wire this to ``sim.now`` so
        #: control events share the datapath timeline. Unwired planes
        #: stamp t=0, keeping pure-control tests simulator-free.
        self.clock: Optional[Callable[[], float]] = None

    def _now(self) -> float:
        clock = self.clock
        return clock() if clock is not None else 0.0

    # -- inventory ------------------------------------------------------------------
    def register_host(
        self,
        agent: ThymesisFlowAgent,
        transceivers: int = 2,
        donor_capacity_bytes: int = 0,
        channel_capacity: int = 64,
    ) -> None:
        """Register one host (its agent + endpoints) with the plane."""
        host = agent.hostname
        if host in self._hosts:
            raise OrchestrationError(f"host {host!r} already registered")
        self.state.add_host(
            host,
            transceivers=transceivers,
            channel_capacity=channel_capacity,
            donor_capacity_bytes=donor_capacity_bytes,
        )
        table_entries = agent.device.rmmu.table_entries
        window = agent.device.compute.window
        if window is not None:
            usable = min(
                table_entries, window.size // agent.kernel.section_bytes
            )
        else:
            usable = table_entries
        self._hosts[host] = _HostRecord(
            agent=agent,
            section_pool=AddressSpaceAllocator(
                AddressRange(0, usable), name=f"{host}/sections"
            ),
        )
        self.audit_log.append(f"register host {host}")

    def add_cable(
        self, host_a: str, channel_a: int, host_b: str, channel_b: int
    ) -> None:
        self.state.add_cable(
            self.state.xcvr(host_a, channel_a),
            self.state.xcvr(host_b, channel_b),
        )

    def add_switch(self, switch: str, ports: int,
                   driver: Optional[SwitchDriver] = None) -> None:
        """Register a switching layer; ``driver`` binds it to hardware."""
        self.state.add_switch(switch, ports)
        if driver is not None:
            self._switch_drivers[switch] = driver

    def add_switch_cable(self, host: str, channel: int, switch: str,
                         port: int) -> None:
        self.state.add_cable(
            self.state.xcvr(host, channel),
            self.state.switch_port(switch, port),
        )

    # -- tenancy ------------------------------------------------------------------------
    def register_tenant(
        self,
        name: str,
        qos: "QosClass | str" = QosClass.BURSTABLE,
        max_attachments: Optional[int] = None,
        max_bytes: Optional[int] = None,
        role: Role = Role.OPERATOR,
        token: Optional[str] = None,
    ) -> str:
        """Register a tenant; returns its bearer token.

        The token doubles as the tenant's credential (mapped to
        ``role``) and its identity: attaches made with it are charged
        against the tenant's quota and carry its QoS class. ``token``
        pins a pre-agreed credential for deterministic setups.
        """
        spec = TenantSpec(
            name=name,
            qos=QosClass.parse(qos),
            max_attachments=max_attachments,
            max_bytes=max_bytes,
        )
        self.quotas.register(spec)
        if token is None:
            token = self.acl.issue_token(role)
        else:
            self.acl.register_token(token, role)
        self._tenant_tokens[token] = name
        self.audit_log.append(
            f"register tenant {name} ({spec.qos.value})"
        )
        return token

    def tenant_of(self, token: Optional[str]) -> Optional[str]:
        """Tenant name behind a credential (None for non-tenant tokens)."""
        if token is None:
            return None
        return self._tenant_tokens.get(token)

    def tenant_usage(self, token: Optional[str] = None) -> List[Dict]:
        self.acl.require(token, Permission.READ_STATE)
        return self.quotas.describe()

    # -- attach workflow ---------------------------------------------------------------
    def attach(
        self,
        compute_host: str,
        size: int,
        memory_host: Optional[str] = None,
        bonded: bool = False,
        token: Optional[str] = None,
    ) -> Attachment:
        """Allocate ``size`` bytes of disaggregated memory to a host.

        Full §IV-C workflow: authorize → admit (tenant quota + QoS
        headroom) → pick donor → plan + reserve a path → steal on the
        donor → allocate flow + device sections → push the signed
        attach plan to the compute agent.
        """
        self.acl.require(token, Permission.ATTACH)
        record = self._host(compute_host)
        section_bytes = record.agent.kernel.section_bytes
        size = -(-size // section_bytes) * section_bytes
        tenant = self.tenant_of(token)
        qos: Optional[QosClass] = None
        if tenant is not None:
            spec = self.quotas.spec(tenant)
            qos = spec.qos
            # Charged before any planner work: a quota-denied request
            # (429) must not touch graph state at all.
            self.quotas.charge(tenant, size)
            if (
                qos is QosClass.BEST_EFFORT
                and self.best_effort_reserve > 0.0
            ):
                free, total = self.planner.capacity_headroom()
                if free - size < self.best_effort_reserve * total:
                    self.quotas.release(tenant, size)
                    raise NoHeadroomError(
                        f"best-effort attach of {size} bytes would dip "
                        f"into the guaranteed reserve "
                        f"({free} free of {total}, reserve "
                        f"{self.best_effort_reserve:.0%})",
                        tenant=tenant,
                        free=free,
                        total=total,
                        reserve=self.best_effort_reserve,
                    )
        try:
            attachment = self._attach_planned(
                record, compute_host, size, memory_host, bonded
            )
        except Exception:
            if tenant is not None:
                self.quotas.release(tenant, size)
            raise
        attachment.tenant = tenant
        attachment.qos = qos.value if qos is not None else None
        self.audit_log.append(
            f"attach #{attachment.attachment_id}: {size >> 20} MiB "
            f"{attachment.memory_host} -> {compute_host}"
            + (" (bonded)" if bonded else "")
            + (f" [{tenant}]" if tenant else "")
        )
        if _events.ENABLED:
            now = self._now()
            _events.emit(
                now,
                "control.steal",
                attachment=attachment.attachment_id,
                grant=attachment.grant.grant_id,
                memory_host=attachment.memory_host,
                bytes=size,
            )
            fields = dict(
                attachment=attachment.attachment_id,
                compute_host=compute_host,
                memory_host=attachment.memory_host,
                bytes=size,
                network_id=attachment.flow.network_id,
                bonded=bonded,
            )
            if tenant is not None:
                fields["tenant"] = tenant
            _events.emit(now, "control.attach", **fields)
        return attachment

    def _attach_planned(
        self,
        record: _HostRecord,
        compute_host: str,
        size: int,
        memory_host: Optional[str],
        bonded: bool,
    ) -> Attachment:
        """Plan/reserve/apply once the request has been admitted."""
        section_bytes = record.agent.kernel.section_bytes
        if memory_host is None:
            memory_host = self.planner.pick_donor(compute_host, size)
        donor_record = self._host(memory_host)

        path = self.planner.plan(
            compute_host, memory_host, channels=2 if bonded else 1
        )
        try:
            self.state.reserve_donor_memory(memory_host, size)
        except GraphError:
            self.planner.release(path)
            raise
        grant: Optional[StealGrant] = None
        flow: Optional[ActiveFlow] = None
        section_run: Optional[AddressRange] = None
        try:
            grant = donor_record.agent.steal_memory(size)
            section_run = record.section_pool.allocate(
                size // section_bytes, alignment=1
            )
            flow = self.flows.allocate(
                compute_host,
                memory_host,
                section_index=section_run.start,
                channels=path.channel_indices,
                bonded=bonded,
            )
            plan = self._build_plan(record, flow, grant, path, section_run)
            self._configure_switches(path)
            try:
                self._verify_and_apply(record.agent, plan)
            except Exception:
                self._teardown_switches(path)
                raise
        except Exception:
            # Unwind partial state in reverse order.
            if flow is not None:
                self.flows.release(flow.network_id)
            if section_run is not None:
                record.section_pool.free(section_run)
            if grant is not None:
                donor_record.agent.release_grant(grant)
            self.state.release_donor_memory(memory_host, size)
            self.planner.release(path)
            raise
        attachment = Attachment(
            attachment_id=self._next_attachment,
            compute_host=compute_host,
            memory_host=memory_host,
            size=size,
            flow=flow,
            plan=plan,
            grant=grant,
            path=path,
            section_run=section_run,
        )
        self._next_attachment += 1
        self._attachments[attachment.attachment_id] = attachment
        return attachment

    def detach(
        self,
        attachment_id: int,
        token: Optional[str] = None,
        force: bool = False,
    ) -> None:
        """Tear an attachment down (reverse order of attach).

        ``force=True`` is the failover path: donor-side steps that
        cannot complete (the lender crashed, the path to it is dark)
        are tolerated and logged instead of aborting — the plane's
        bookkeeping must converge even when the far side is gone. Both
        sides' LLC channels are then quiesced so no retention timer
        keeps replaying frames for a flow that no longer exists.
        """
        self.acl.require(token, Permission.DETACH)
        try:
            attachment = self._attachments.pop(attachment_id)
        except KeyError:
            raise UnknownAttachmentError(
                f"unknown attachment {attachment_id}",
                attachment_id=attachment_id,
            ) from None
        record = self._host(attachment.compute_host)
        donor = self._host(attachment.memory_host)
        record.agent.detach_remote_memory(attachment.plan)
        if force:
            try:
                self._teardown_switches(attachment.path)
            except Exception as exc:  # crashed fabric state
                self.audit_log.append(
                    f"detach #{attachment_id}: switch teardown failed "
                    f"under force ({exc})"
                )
            try:
                donor.agent.release_grant(attachment.grant)
            except Exception as exc:  # crashed lender: grant leaks
                self.audit_log.append(
                    f"detach #{attachment_id}: grant "
                    f"{attachment.grant.grant_id} leaked on "
                    f"{attachment.memory_host} ({exc})"
                )
        else:
            self._teardown_switches(attachment.path)
            donor.agent.release_grant(attachment.grant)
        self.flows.release(attachment.flow.network_id)
        record.section_pool.free(attachment.section_run)
        self.state.release_donor_memory(
            attachment.memory_host, attachment.size
        )
        self.planner.release(attachment.path)
        if attachment.tenant is not None:
            self.quotas.release(attachment.tenant, attachment.size)
        if force:
            self._quiesce_attachment_llcs(attachment)
        self.audit_log.append(
            f"detach #{attachment_id}" + (" (forced)" if force else "")
        )
        if _events.ENABLED:
            _events.emit(
                self._now(),
                "control.detach",
                attachment=attachment_id,
                compute_host=attachment.compute_host,
                memory_host=attachment.memory_host,
                network_id=attachment.flow.network_id,
                forced=force,
            )

    def _quiesce_attachment_llcs(self, attachment: Attachment) -> None:
        """Reset both sides' LLC channels after a forced detach.

        A permanently dead link leaves unacknowledged frames in both
        LLCs' retention buffers, whose replay timers would re-arm
        forever; resetting the channels (the firmware link-down path)
        drops that state so the simulation quiesces.
        """
        compute_device = self._host(attachment.compute_host).agent.device
        donor_device = self._host(attachment.memory_host).agent.device
        for channel in attachment.flow.channels:
            if channel < len(compute_device.llcs):
                compute_device.llcs[channel].reset_link()
        for node_path in attachment.path.node_paths:
            donor_xcvr = node_path[-2]
            try:
                channel = self.state.node_attr(donor_xcvr, "channel")
            except GraphError:
                continue
            if channel < len(donor_device.llcs):
                donor_device.llcs[channel].reset_link()

    # -- queries --------------------------------------------------------------------------
    def attachments(self, token: Optional[str] = None) -> List[Attachment]:
        self.acl.require(token, Permission.READ_STATE)
        return [self._attachments[k] for k in sorted(self._attachments)]

    def attachment(self, attachment_id: int,
                   token: Optional[str] = None) -> Attachment:
        self.acl.require(token, Permission.READ_STATE)
        try:
            return self._attachments[attachment_id]
        except KeyError:
            raise UnknownAttachmentError(
                f"unknown attachment {attachment_id}",
                attachment_id=attachment_id,
            ) from None

    def system_state(self, token: Optional[str] = None) -> Dict:
        self.acl.require(token, Permission.READ_STATE)
        return self.state.snapshot()

    # -- internals ----------------------------------------------------------------------
    def _host(self, host: str) -> _HostRecord:
        try:
            return self._hosts[host]
        except KeyError:
            raise OrchestrationError(f"unknown host {host!r}") from None

    def _build_plan(
        self,
        record: _HostRecord,
        flow: ActiveFlow,
        grant: StealGrant,
        path: PlannedPath,
        section_run: AddressRange,
    ) -> AttachPlan:
        switch_hops = max(0, path.hop_count - 2)
        remote_latency = BASE_REMOTE_LATENCY_S + switch_hops * PER_SWITCH_HOP_S
        distance = max(
            LOCAL_DISTANCE,
            round(LOCAL_DISTANCE * remote_latency / LOCAL_DRAM_LATENCY_S),
        )
        node_id = record.next_remote_node
        record.next_remote_node += 1
        return AttachPlan(
            section_indices=list(
                range(section_run.start, section_run.end)
            ),
            donor_effective_base=grant.effective_base,
            wire_network_id=flow.wire_network_id,
            channels=list(flow.channels),
            numa_node_id=node_id,
            numa_distance=distance,
            remote_latency_s=remote_latency,
        )

    def _switch_hops(self, path: PlannedPath):
        for node_path in path.node_paths:
            for switch_name, driver in self._switch_drivers.items():
                for ingress, egress in extract_switch_hops(
                    node_path, switch_name
                ):
                    yield driver, ingress, egress

    def _configure_switches(self, path: PlannedPath) -> None:
        """Push bidirectional circuits for every switch hop on the path."""
        configured = []
        try:
            for driver, ingress, egress in self._switch_hops(path):
                driver.connect(ingress, egress)
                configured.append((driver, ingress, egress))
        except Exception:
            for driver, ingress, egress in reversed(configured):
                driver.disconnect(ingress, egress)
            raise

    def _teardown_switches(self, path: PlannedPath) -> None:
        for driver, ingress, egress in self._switch_hops(path):
            driver.disconnect(ingress, egress)

    def _verify_and_apply(
        self, agent: ThymesisFlowAgent, plan: AttachPlan
    ) -> None:
        """Sign the plan; the agent applies only verified configs."""
        payload = json.dumps(
            {
                "sections": plan.section_indices,
                "donor_base": plan.donor_effective_base,
                "network_id": plan.wire_network_id,
            },
            sort_keys=True,
        ).encode()
        signature = self.trust.sign(payload)
        if not self.trust.verify(payload, signature):
            raise AuthError("configuration signature invalid")
        agent.attach_remote_memory(plan)

