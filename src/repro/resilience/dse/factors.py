"""The DSE factor space: what can vary, and what values are legal.

A *factor* is one knob of the configuration under exploration; a
*design point* assigns one level to every factor. The space defines
the legal domain per factor (numeric range or finite choice set) plus
the default levels a design sweeps when the user does not override
them — so a typo'd factor name or an out-of-range level fails fast
with a typed error instead of deep inside a simulator build.

The ``campaign`` factor's choice set is derived from the campaign
catalogue's param-spec table (:data:`~repro.resilience.campaigns
.CAMPAIGN_PARAMS`) — one source of truth shared with the REST fault
hook and ``GET /v1/faults``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...errors import ReproError
from ..campaigns import CAMPAIGN_PARAMS

__all__ = [
    "DseDesignError",
    "EmptyFeasibleSetError",
    "Factor",
    "FactorSpace",
    "FailoverPolicy",
    "FAILOVER_POLICIES",
    "default_space",
]


class DseDesignError(ReproError, ValueError):
    """Malformed design: unknown factor, bad level, bad parameters."""

    code = "dse/bad-design"


class EmptyFeasibleSetError(DseDesignError):
    """No design point satisfies the feasibility constraint."""

    code = "dse/empty-feasible-set"


@dataclass(frozen=True)
class FailoverPolicy:
    """One level of the ``failover_policy`` factor.

    Bundles the endpoint-level recovery knobs (transaction timeout,
    retry budget) with the control-plane escalation threshold and
    whether the health monitor is allowed to execute a failover at
    all. ``"none"`` is the deliberate canary policy: a fatal fault is
    never healed, so availability collapses and the availability SLO
    must flag the configuration in every report.
    """

    name: str
    timeout_s: float
    max_attempts: int
    backoff_base_s: float
    backoff_max_s: float
    dead_after_failures: int
    failover: bool
    doc: str

    def describe(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "timeout_s": self.timeout_s,
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_max_s": self.backoff_max_s,
            "dead_after_failures": self.dead_after_failures,
            "failover": self.failover,
            "doc": self.doc,
        }


FAILOVER_POLICIES: Dict[str, FailoverPolicy] = {
    policy.name: policy
    for policy in (
        FailoverPolicy(
            "fast", timeout_s=20e-6, max_attempts=3,
            backoff_base_s=2e-6, backoff_max_s=20e-6,
            dead_after_failures=1, failover=True,
            doc="tight timeouts, fail over on the first surfaced error",
        ),
        FailoverPolicy(
            "patient", timeout_s=40e-6, max_attempts=5,
            backoff_base_s=4e-6, backoff_max_s=80e-6,
            dead_after_failures=2, failover=True,
            doc="longer retry budget, fail over on the second error",
        ),
        FailoverPolicy(
            "none", timeout_s=20e-6, max_attempts=2,
            backoff_base_s=2e-6, backoff_max_s=20e-6,
            dead_after_failures=1, failover=False,
            doc="no self-healing: a fatal fault loses the remaining work",
        ),
    )
}


@dataclass(frozen=True)
class Factor:
    """One explorable knob: a typed domain plus default sweep levels."""

    name: str
    kind: str  # "int" | "float" | "bool" | "choice"
    doc: str
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Tuple[Any, ...] = ()
    default_levels: Tuple[Any, ...] = ()

    def validate_level(self, value: Any) -> Any:
        """Coerce and range-check one level; raises on anything off."""
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise DseDesignError(
                    f"factor {self.name!r} is boolean, got {value!r}"
                )
            return value
        if self.kind == "choice":
            if value not in self.choices:
                raise DseDesignError(
                    f"factor {self.name!r} level {value!r} not in "
                    f"{{{', '.join(map(repr, self.choices))}}}"
                )
            return value
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise DseDesignError(
                    f"factor {self.name!r} must be an integer, "
                    f"got {value!r}"
                )
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DseDesignError(
                f"factor {self.name!r} must be a number, got {value!r}"
            )
        value = int(value) if self.kind == "int" else float(value)
        if not self.minimum <= value <= self.maximum:
            raise DseDesignError(
                f"factor {self.name!r} level {value!r} outside "
                f"[{self.minimum!r}, {self.maximum!r}]"
            )
        return value

    def describe(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "doc": self.doc,
            "default_levels": list(self.default_levels),
        }
        if self.kind == "choice":
            record["choices"] = list(self.choices)
        elif self.kind != "bool":
            record["minimum"] = self.minimum
            record["maximum"] = self.maximum
        return record


class FactorSpace:
    """Ordered factor collection with level validation.

    The iteration order of factors is the canonical axis order of
    every design built over the space — deterministic grids, stable
    effect tables, reproducible artifacts.
    """

    def __init__(self, factors: List[Factor]):
        self._factors: Dict[str, Factor] = {}
        for factor in factors:
            if factor.name in self._factors:
                raise DseDesignError(
                    f"duplicate factor {factor.name!r}"
                )
            self._factors[factor.name] = factor

    @property
    def names(self) -> List[str]:
        return list(self._factors)

    def __iter__(self):
        return iter(self._factors.values())

    def __contains__(self, name: str) -> bool:
        return name in self._factors

    def factor(self, name: str) -> Factor:
        try:
            return self._factors[name]
        except KeyError:
            raise DseDesignError(
                f"unknown factor {name!r} "
                f"(have: {', '.join(self._factors)})"
            ) from None

    def levels(
        self, overrides: Optional[Dict[str, List[Any]]] = None
    ) -> Dict[str, List[Any]]:
        """The per-factor sweep levels, validated, in space order.

        ``overrides`` replaces a factor's default levels; unknown
        factor names, empty level lists, duplicate levels, or levels
        outside the factor's domain raise :class:`DseDesignError`.
        """
        overrides = dict(overrides or {})
        for name in overrides:
            self.factor(name)  # raises on unknown factors
        out: Dict[str, List[Any]] = {}
        for factor in self:
            raw = overrides.get(factor.name, list(factor.default_levels))
            if not raw:
                raise DseDesignError(
                    f"factor {factor.name!r} has no levels"
                )
            validated = [factor.validate_level(value) for value in raw]
            if len(set(map(repr, validated))) != len(validated):
                raise DseDesignError(
                    f"factor {factor.name!r} has duplicate levels: "
                    f"{validated!r}"
                )
            out[factor.name] = validated
        return out

    def validate_point(self, point: Dict[str, Any]) -> Dict[str, Any]:
        """Normalize one design point (all factors, space order)."""
        unknown = sorted(set(point) - set(self._factors))
        if unknown:
            raise DseDesignError(
                f"unknown factor(s): {', '.join(unknown)}"
            )
        missing = [name for name in self._factors if name not in point]
        if missing:
            raise DseDesignError(
                f"design point missing factor(s): {', '.join(missing)}"
            )
        return {
            factor.name: factor.validate_level(point[factor.name])
            for factor in self
        }

    def describe(self) -> List[Dict[str, Any]]:
        return [factor.describe() for factor in self]


def default_space() -> FactorSpace:
    """The stock robustness factor space explored by ``repro dse``.

    Domains are deliberately wider than the default levels: the
    defaults keep a full factorial affordable, while the domain caps
    what a user may request before the simulator would reject or
    crawl (e.g. ``frame_flits`` ≥ 5 so one 128 B write fits a frame).
    """
    campaigns = ("none",) + tuple(sorted(CAMPAIGN_PARAMS))
    return FactorSpace([
        Factor(
            "frame_flits", "int",
            "LLC frame size in flits (frame payload granularity)",
            minimum=5, maximum=64, default_levels=(8, 16),
        ),
        Factor(
            "credit_depth", "int",
            "receive-queue credit depth (outstanding frames per link)",
            minimum=1, maximum=4096, default_levels=(64, 256),
        ),
        Factor(
            "bonding", "bool",
            "bond both network channels into one flow",
            default_levels=(False,),
        ),
        Factor(
            "loss_rate", "float",
            "ambient per-frame Bernoulli loss on the lender's links "
            "(degraded circuit)",
            minimum=0.0, maximum=0.5, default_levels=(0.0, 0.01),
        ),
        Factor(
            "campaign", "choice",
            "fault campaign armed mid-workload against the lender's "
            "fault domain ('none' = fault-free baseline)",
            choices=campaigns, default_levels=("link-kill",),
        ),
        Factor(
            "failover_policy", "choice",
            "endpoint retry budget + control-plane self-healing policy",
            choices=tuple(sorted(FAILOVER_POLICIES)),
            default_levels=("fast", "none"),
        ),
    ])
