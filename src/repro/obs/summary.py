"""Human-readable end-of-run summary tables.

One formatter shared by everything that reports numbers to a terminal:
the ``python -m repro demo`` walk-through, ``examples/quickstart.py``
and the ``python -m repro trace`` artifacts all render through
:class:`RunSummary`, so ad-hoc ``print`` reporting and real traced runs
share a single code path (and a single look).

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

__all__ = ["RunSummary", "summary_from_snapshot"]

Value = Union[str, int, float]


def _format_value(value: Value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.4g}"
        return f"{value:,.3f}".rstrip("0").rstrip(".")
    return str(value)


class RunSummary:
    """Sectioned label/value report rendered as an aligned text table."""

    def __init__(self, title: str):
        self.title = title
        self._sections: List[Tuple[str, List[Tuple[str, str]]]] = []

    def section(self, heading: str) -> "RunSummary":
        """Open a new section; subsequent rows land in it."""
        self._sections.append((heading, []))
        return self

    def row(self, label: str, value: Value, unit: str = "") -> "RunSummary":
        """Add one label/value row to the current section."""
        if not self._sections:
            self.section("")
        rendered = _format_value(value)
        if unit:
            rendered = f"{rendered} {unit}"
        self._sections[-1][1].append((label, rendered))
        return self

    @property
    def row_count(self) -> int:
        return sum(len(rows) for _h, rows in self._sections)

    def render(self) -> str:
        """Aligned text: a title bar, sections, two padded columns."""
        lines = [f"== {self.title} =="]
        label_width = max(
            (len(label) for _h, rows in self._sections for label, _v in rows),
            default=0,
        )
        for heading, rows in self._sections:
            if heading:
                lines.append(f"-- {heading} --")
            for label, value in rows:
                lines.append(f"  {label.ljust(label_width)}  {value}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def summary_from_snapshot(
    title: str,
    snapshot: Dict[str, float],
    prefixes: Optional[List[str]] = None,
    skip_zero: bool = True,
) -> RunSummary:
    """Group a flat metrics snapshot into a sectioned summary.

    Metrics are grouped by their first dotted component (``llc.*``,
    ``dram.*``, ...). ``prefixes`` restricts and orders the sections;
    by default every prefix present appears, alphabetically.
    ``skip_zero`` drops zero-valued rows so short runs stay readable.
    """
    groups: Dict[str, List[Tuple[str, float]]] = {}
    for qualified, value in snapshot.items():
        prefix = qualified.split(".", 1)[0].split("{", 1)[0]
        groups.setdefault(prefix, []).append((qualified, value))
    ordered = prefixes if prefixes is not None else sorted(groups)
    summary = RunSummary(title)
    for prefix in ordered:
        rows = [
            (name, value)
            for name, value in groups.get(prefix, [])
            if not (skip_zero and value == 0)
        ]
        if not rows:
            continue
        summary.section(prefix)
        for name, value in rows:
            summary.row(name, value)
    return summary
