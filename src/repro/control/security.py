"""Control-plane access control — paper §IV-C.

"An access control system ensures that only users with enough
privileges can act on the system status" and "trusted node agents and
network elements firmware accept configuration updates only from a
trusted control plane."

Tokens are opaque strings mapped to roles; roles map to permission
sets. The orchestrator additionally signs its agent-bound
configurations with a plane secret agents verify.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from ..errors import ReproError

__all__ = ["Role", "Permission", "AccessControl", "AuthError", "PlaneTrust"]


class AuthError(ReproError, PermissionError):
    """Missing, unknown or under-privileged credential."""

    code = "auth/denied"


class Permission(enum.Enum):
    READ_STATE = "read_state"
    ATTACH = "attach"
    DETACH = "detach"
    ADMIN = "admin"


class Role(enum.Enum):
    VIEWER = "viewer"
    OPERATOR = "operator"
    ADMIN = "admin"


_ROLE_PERMISSIONS: Dict[Role, FrozenSet[Permission]] = {
    Role.VIEWER: frozenset({Permission.READ_STATE}),
    Role.OPERATOR: frozenset(
        {Permission.READ_STATE, Permission.ATTACH, Permission.DETACH}
    ),
    Role.ADMIN: frozenset(set(Permission)),
}


class AccessControl:
    """Token → role registry with permission checks."""

    def __init__(self):
        self._tokens: Dict[str, Role] = {}

    def issue_token(self, role: Role) -> str:
        token = secrets.token_hex(16)
        self._tokens[token] = role
        return token

    def register_token(self, token: str, role: Role) -> None:
        """Install a pre-agreed token (deterministic test setups)."""
        self._tokens[token] = role

    def revoke(self, token: str) -> None:
        self._tokens.pop(token, None)

    def role_of(self, token: Optional[str]) -> Role:
        if token is None or token not in self._tokens:
            raise AuthError("missing or unknown token")
        return self._tokens[token]

    def require(self, token: Optional[str], permission: Permission) -> Role:
        role = self.role_of(token)
        if permission not in _ROLE_PERMISSIONS[role]:
            raise AuthError(
                f"role {role.value!r} lacks permission {permission.value!r}"
            )
        return role

    def permissions(self, token: Optional[str]) -> FrozenSet[Permission]:
        return _ROLE_PERMISSIONS[self.role_of(token)]


@dataclass
class PlaneTrust:
    """HMAC trust anchor between the control plane and node agents.

    Agents "accept configuration updates only from a trusted control
    plane": the plane signs each configuration blob; agents verify
    before applying.
    """

    secret: bytes

    @classmethod
    def generate(cls) -> "PlaneTrust":
        return cls(secret=secrets.token_bytes(32))

    def sign(self, payload: bytes) -> str:
        return hmac.new(self.secret, payload, hashlib.sha256).hexdigest()

    def verify(self, payload: bytes, signature: str) -> bool:
        expected = self.sign(payload)
        return hmac.compare_digest(expected, signature)
