"""Differential determinism of the sweep engine.

The contract the whole caching/parallelism story rests on:

* a figure regenerated with ``jobs=4`` is **byte-identical** to the
  serial ``fig*()`` function;
* a warm (cached) re-run is byte-identical to the cold run;
* the content address commits to target, kwargs, seed and source
  fingerprint — change any one and the cache cold-runs.
"""

import json
import os

import pytest

from repro.figures import FIGURES, render
from repro.obs import MetricsRegistry, parse_qualified
from repro.sweep import (
    ResultCache,
    SweepEngine,
    make_spec,
    normalize_jobs,
    run_figures,
    source_fingerprint,
)

#: Small figure parameterizations so the differential run stays quick.
SMALL = {
    "fig5": {"threads": (4, 8)},
    "fig6": {"partitions": (4, 16)},
    "fig7": {"partitions": (4,)},
    "fig8": {"samples": 3_000},
    "fig9": {"shards": (5,)},
    "rtt": {"samples": 4},
}


@pytest.fixture()
def cache_dir(tmp_path):
    return str(tmp_path / "cache")


class TestParallelMatchesSerial:
    def test_jobs4_byte_identical_and_cached_rerun_identical(self, cache_dir):
        names = sorted(SMALL)
        serial = {
            name: render(FIGURES[name](**SMALL[name])) for name in names
        }

        tables, engine = run_figures(
            names, jobs=4, cache_dir=cache_dir,
            figure_kwargs={k: dict(v) for k, v in SMALL.items()},
        )
        assert engine.executed > 0 and engine.cache_hits == 0
        for name in names:
            assert render(tables[name]) == serial[name], name

        # Warm re-run: everything served from cache, still identical.
        warm_tables, warm_engine = run_figures(
            names, jobs=4, cache_dir=cache_dir,
            figure_kwargs={k: dict(v) for k, v in SMALL.items()},
        )
        assert warm_engine.executed == 0
        assert warm_engine.cache_hits == warm_engine.specs_seen > 0
        for name in names:
            assert render(warm_tables[name]) == serial[name], name

    def test_serial_engine_matches_direct_call(self, cache_dir):
        tables, _ = run_figures(
            ["fig8"], jobs=1, cache_dir=cache_dir,
            figure_kwargs={"fig8": {"samples": 2_000}},
        )
        assert render(tables["fig8"]) == render(FIGURES["fig8"](samples=2_000))


class TestRunSpecKeys:
    def test_key_is_stable_and_canonical(self):
        a = make_spec("slice:fig8.config", kind="local", samples=100)
        b = make_spec("slice:fig8.config", samples=100, kind="local")
        assert a.key == b.key
        assert a == b

    def test_key_commits_to_every_field(self):
        base = make_spec("slice:fig8.config", kind="local", samples=100)
        assert base.key != make_spec(
            "slice:fig8.config", kind="local", samples=101
        ).key
        assert base.key != make_spec(
            "slice:fig9.case", kind="local", samples=100
        ).key
        assert base.key != make_spec(
            "slice:fig8.config", kind="local", samples=100, seed=7
        ).key
        assert base.key != make_spec(
            "slice:fig8.config", kind="local", samples=100, fingerprint="x"
        ).key

    def test_kwargs_round_trip_to_json_types(self):
        spec = make_spec("slice:fig6.workload", workload="A",
                         partitions=(4, 16))
        assert spec.kwargs == {"workload": "A", "partitions": [4, 16]}

    def test_default_fingerprint_is_source_tree_plus_backend(self):
        from repro import accel
        from repro.sweep.fingerprint import combine_fingerprints

        spec = make_spec("slice:rtt.rows", samples=1)
        assert spec.fingerprint == combine_fingerprints(
            source_fingerprint(), "backend:" + accel.ops.NAME
        )
        assert len(spec.fingerprint) == 64


class TestResultCache:
    def test_fingerprint_mismatch_is_a_miss(self, cache_dir):
        cache = ResultCache(cache_dir)
        old = make_spec("slice:rtt.rows", fingerprint="old-code", samples=1)
        cache.put(old, [["row"]], elapsed_s=0.1)
        assert cache.get(old)["result"] == [["row"]]
        new = make_spec("slice:rtt.rows", fingerprint="new-code", samples=1)
        assert cache.get(new) is None

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        cache = ResultCache(cache_dir)
        spec = make_spec("slice:rtt.rows", fingerprint="f", samples=1)
        cache.put(spec, {"ok": True}, elapsed_s=0.0)
        with open(os.path.join(cache_dir, f"{spec.key}.json"), "w") as fh:
            fh.write("{not json")
        assert cache.get(spec) is None

    def test_prune_removes_stale_entries(self, cache_dir):
        cache = ResultCache(cache_dir)
        cache.put(make_spec("slice:rtt.rows", fingerprint="old", samples=1),
                  1, 0.0)
        keep = make_spec("slice:rtt.rows", fingerprint="new", samples=1)
        cache.put(keep, 2, 0.0)
        assert cache.prune("new") == 1
        assert cache.entries() == [keep.key]

    def test_entry_file_is_content_addressed_json(self, cache_dir):
        cache = ResultCache(cache_dir)
        spec = make_spec("slice:rtt.rows", fingerprint="f", samples=3)
        path = cache.put(spec, [[1, 2]], elapsed_s=0.5)
        assert os.path.basename(path) == f"{spec.key}.json"
        with open(path) as fh:
            envelope = json.load(fh)
        assert envelope["kwargs"] == {"samples": 3}
        assert envelope["fingerprint"] == "f"
        assert envelope["result"] == [[1, 2]]


class TestWorkerMetricsMerge:
    def test_merge_flat_sums_across_workers(self):
        worker_a = MetricsRegistry("a")
        worker_a.gauge("sweep.worker.runs", target="slice:x").adjust(2)
        worker_a.gauge("sweep.worker.busy_s", target="slice:x").adjust(0.5)
        worker_b = MetricsRegistry("b")
        worker_b.gauge("sweep.worker.runs", target="slice:x").adjust(3)

        parent = MetricsRegistry("parent")
        parent.merge_flat(worker_a.snapshot())
        parent.merge_flat(worker_b.snapshot())
        snapshot = parent.snapshot()
        assert snapshot["sweep.worker.runs{target=slice:x}"] == 5
        assert snapshot["sweep.worker.busy_s{target=slice:x}"] == 0.5

    def test_parse_qualified_inverts_rendering(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("llc.replays", endpoint="tf.llc0", node="n0")
        assert parse_qualified(gauge.qualified) == (
            "llc.replays", {"endpoint": "tf.llc0", "node": "n0"}
        )
        assert parse_qualified("plain.name") == ("plain.name", {})

    def test_engine_merges_worker_counters(self, cache_dir):
        engine = SweepEngine(jobs=2, cache_dir=cache_dir)
        specs = [
            make_spec("slice:fig5.threads", count=count) for count in (4, 8)
        ]
        engine.run(specs)
        snapshot = engine.registry.snapshot()
        assert snapshot[
            "sweep.worker.runs{target=slice:fig5.threads}"
        ] == 2
        assert snapshot["sweep.executed"] == 2


class TestEngineBasics:
    def test_normalize_jobs(self):
        assert normalize_jobs("auto") >= 1
        assert normalize_jobs(None) >= 1
        assert normalize_jobs(3) == 3
        assert normalize_jobs("2") == 2
        with pytest.raises(ValueError):
            normalize_jobs(0)

    def test_seed_is_forwarded_to_accepting_targets(self, cache_dir):
        engine = SweepEngine(jobs=1, cache_dir=cache_dir)
        baseline, seeded = engine.run(
            [
                make_spec("py:sweep_targets:seeded_value", scale=2),
                make_spec("py:sweep_targets:seeded_value", scale=2,
                          seed=11),
            ]
        )
        assert baseline.value == {"seed": 0, "scale": 2}
        assert seeded.value == {"seed": 11, "scale": 2}

    def test_cache_off_always_executes(self, tmp_path):
        engine = SweepEngine(jobs=1, cache=False)
        spec = make_spec("slice:fig5.threads", count=4)
        engine.run([spec])
        engine.run([spec])
        assert engine.executed == 2
        assert engine.cache_hits == 0


class TestSharedBootstrap:
    """One worker-bootstrap helper serves both pools (sweep + domains)."""

    def test_resolve_jobs_explicit_wins_over_env(self, monkeypatch):
        from repro.sweep import resolve_jobs

        monkeypatch.setenv("SWEEP_JOBS", "7")
        assert resolve_jobs(3) == 3
        assert resolve_jobs("2") == 2

    def test_resolve_jobs_falls_back_to_env_then_one(self, monkeypatch):
        from repro.sweep import resolve_jobs

        monkeypatch.setenv("SWEEP_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.delenv("SWEEP_JOBS")
        assert resolve_jobs(None) == 1

    def test_resolve_jobs_auto_uses_cpu_count(self, monkeypatch):
        from repro.sweep import resolve_jobs

        monkeypatch.setenv("SWEEP_JOBS", "auto")
        assert resolve_jobs(None) >= 1

    def test_engine_reexports_normalize_jobs(self):
        from repro.sweep import bootstrap, engine

        assert engine.normalize_jobs is bootstrap.normalize_jobs

    def test_pool_initargs_pin_current_backend(self):
        from repro import accel
        from repro.sweep.bootstrap import pool_initargs

        assert pool_initargs() == (accel.ops.NAME,)

    def test_derive_seed_is_stable_and_sensitive(self):
        from repro.sweep.bootstrap import derive_seed

        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)
        assert derive_seed(7, "a", 1) != derive_seed(7, "a", 2)
        assert derive_seed(7, "a", 1) != derive_seed(8, "a", 1)
        assert 0 <= derive_seed(7, "x") < 2 ** 63

    def test_worker_run_snapshot_shape(self):
        from repro.sweep.bootstrap import worker_run_snapshot

        snap = worker_run_snapshot("sweep", 0.25, target="t")
        runs = [v for k, v in snap.items()
                if k.startswith("sweep.worker.runs")]
        busy = [v for k, v in snap.items()
                if k.startswith("sweep.worker.busy_s")]
        assert runs == [1.0] and busy == [0.25]
