"""The async control-plane server: QoS, quotas, shedding, races, drain.

No pytest-asyncio in the toolchain, so every async scenario runs under
``asyncio.run`` — which also mirrors how the CLI boots the server.
"""

import asyncio

import pytest

from repro.control import (
    AdmissionQueue,
    OverloadedError,
    QosClass,
    QuotaExceededError,
    QuotaLedger,
    RestApi,
    TenantSpec,
    route_catalogue,
)
from repro.control.api import EVENTS_MAX_LIMIT, ROUTES
from repro.control.server import ControlServer, ServerConfig, http_request
from repro.obs import MetricsRegistry, event_logging
from repro.testbed import Testbed

MIB = 1 << 20


# -- qos primitives -----------------------------------------------------------------


class TestQosClass:
    def test_parse_round_trips_every_member(self):
        for member in QosClass:
            assert QosClass.parse(member.value) is member
            assert QosClass.parse(member) is member

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown QoS class"):
            QosClass.parse("platinum")

    def test_priority_orders_guaranteed_first(self):
        ordered = sorted(QosClass, key=lambda c: c.priority)
        assert ordered == [
            QosClass.GUARANTEED, QosClass.BURSTABLE, QosClass.BEST_EFFORT
        ]


class TestQuotaLedger:
    def make(self, **kwargs):
        ledger = QuotaLedger()
        ledger.register(TenantSpec("acme", **kwargs))
        return ledger

    def test_charge_and_release_track_usage(self):
        ledger = self.make(max_attachments=2, max_bytes=4 * MIB)
        ledger.charge("acme", MIB)
        ledger.charge("acme", MIB)
        usage = ledger.usage("acme")
        assert usage["attachments"] == 2 and usage["bytes"] == 2 * MIB
        ledger.release("acme", MIB)
        assert ledger.usage("acme")["attachments"] == 1

    def test_attachment_quota_is_a_429_error(self):
        ledger = self.make(max_attachments=1)
        ledger.charge("acme", MIB)
        with pytest.raises(QuotaExceededError) as info:
            ledger.charge("acme", MIB)
        assert info.value.details["dimension"] == "attachments"
        assert info.value.code == "control/quota-exceeded"

    def test_byte_quota_denies_before_mutating(self):
        ledger = self.make(max_bytes=2 * MIB)
        ledger.charge("acme", MIB)
        with pytest.raises(QuotaExceededError) as info:
            ledger.charge("acme", 2 * MIB)
        assert info.value.details["dimension"] == "bytes"
        # the denied charge must not have been half-applied
        assert ledger.usage("acme")["attachments"] == 1
        assert ledger.usage("acme")["bytes"] == MIB

    def test_unknown_tenant_is_denied(self):
        with pytest.raises(QuotaExceededError, match="unknown tenant"):
            QuotaLedger().charge("ghost", MIB)

    def test_release_clamps_at_zero_and_tolerates_deregistered(self):
        ledger = self.make()
        ledger.release("acme", MIB)
        assert ledger.usage("acme")["bytes"] == 0
        ledger.release("ghost", MIB)  # no-op, no raise


class TestAdmissionQueue:
    def test_per_class_budgets_overlap(self):
        queue = AdmissionQueue(max_depth=8)
        assert queue.budget(QosClass.GUARANTEED) == 8
        assert queue.budget(QosClass.BURSTABLE) == 6
        assert queue.budget(QosClass.BEST_EFFORT) == 4

    def test_best_effort_sheds_while_guaranteed_still_fits(self):
        queue = AdmissionQueue(max_depth=8)
        for i in range(4):
            queue.push(QosClass.BEST_EFFORT, i)
        with pytest.raises(OverloadedError):
            queue.push(QosClass.BEST_EFFORT, "over")
        assert queue.shed_count == 1
        queue.push(QosClass.GUARANTEED, "vip")  # still admitted

    def test_total_depth_bounds_even_guaranteed(self):
        queue = AdmissionQueue(max_depth=2)
        queue.push(QosClass.GUARANTEED, 1)
        queue.push(QosClass.GUARANTEED, 2)
        with pytest.raises(OverloadedError):
            queue.push(QosClass.GUARANTEED, 3)

    def test_pop_serves_strict_priority(self):
        queue = AdmissionQueue(max_depth=8)
        queue.push(QosClass.BEST_EFFORT, "be")
        queue.push(QosClass.BURSTABLE, "bu")
        queue.push(QosClass.GUARANTEED, "gu")
        assert [queue.pop(), queue.pop(), queue.pop()] == ["gu", "bu", "be"]
        assert queue.pop() is None


# -- catalogue stays in sync with dispatch ------------------------------------------


class TestRouteCatalogue:
    def test_catalogue_served_unauthenticated(self):
        api = RestApi(Testbed().plane)
        status, body = api.handle("GET", "/v1")
        assert status == 200
        assert body["version"] == "v1"
        assert set(body["error_schema"]) >= {"error", "code"}

    def test_every_catalogued_route_dispatches(self):
        """No route in GET /v1 may 404/405 when actually called."""
        testbed = Testbed()
        api = RestApi(testbed.plane)
        for route in route_catalogue()["routes"]:
            path = route["path"].replace("{id}", "1")
            status, body = api.handle(
                route["method"], path, token=testbed.admin_token
            )
            # Domain 404s (unknown attachment id) are fine; *routing*
            # misses mean the catalogue lies about the dispatch table.
            assert body.get("code") not in (
                "request/no-route", "request/method-not-allowed"
            ), (route, body)
            assert status != 405, (route, body)

    def test_every_dispatch_route_is_catalogued(self):
        """The table IS the dispatch: every spec has a live handler and
        appears exactly once in the catalogue."""
        api = RestApi(Testbed().plane)
        catalogued = {
            (r["method"], r["path"])
            for r in route_catalogue()["routes"]
        }
        declared = {(spec.method, spec.template) for spec in ROUTES}
        assert catalogued == declared
        assert len(route_catalogue()["routes"]) == len(ROUTES)
        for spec in ROUTES:
            assert callable(getattr(api, spec.handler)), spec.handler

    def test_unknown_route_is_404_and_wrong_method_is_405(self):
        api = RestApi(Testbed().plane)
        status, body = api.handle("GET", "/v2/everything")
        assert (status, body["code"]) == (404, "request/no-route")
        status, body = api.handle("PUT", "/v1/state")
        assert (status, body["code"]) == (405, "request/method-not-allowed")
        assert "GET" in body["error"]

    def test_route_for_maps_targets_to_specs(self):
        api = RestApi(Testbed().plane)
        assert api.route_for("GET", "/v1/metrics").raw is True
        assert api.route_for("GET", "/v1/attachments/7?x=1").template == (
            "/v1/attachments/{id}"
        )
        assert api.route_for("PATCH", "/v1/state") is None
        assert api.route_for("GET", "/nope") is None


# -- events pagination ---------------------------------------------------------------


class TestEventsPagination:
    def journal(self):
        ctx = event_logging()
        log = ctx.__enter__()
        testbed = Testbed()
        for _ in range(3):
            attachment = testbed.attach("node0", MIB, memory_host="node1")
            testbed.detach(attachment)
        api = RestApi(testbed.plane)
        return ctx, log, api, testbed.admin_token

    def test_cursor_walk_covers_the_journal_exactly_once(self):
        ctx, log, api, token = self.journal()
        try:
            seen = []
            cursor = 0
            while True:
                status, page = api.handle(
                    "GET", f"/v1/events?since_seq={cursor}&limit=4",
                    token=token,
                )
                assert status == 200
                if not page["count"]:
                    break
                seen.extend(e["seq"] for e in page["events"])
                assert page["count"] == len(page["events"]) <= 4
                cursor = page["next_seq"]
            assert seen == list(range(log.total))
        finally:
            ctx.__exit__(None, None, None)

    def test_unpaginated_request_keeps_legacy_shape(self):
        ctx, log, api, token = self.journal()
        try:
            status, body = api.handle("GET", "/v1/events", token=token)
            assert status == 200
            assert body["total"] == log.total
            assert body["evicted"] == 0
            assert len(body["events"]) == log.total
            assert body["next_seq"] == log.total
        finally:
            ctx.__exit__(None, None, None)

    def test_limit_is_validated_and_capped(self):
        ctx, log, api, token = self.journal()
        try:
            status, body = api.handle(
                "GET", "/v1/events?limit=banana", token=token
            )
            assert (status, body["code"]) == (400, "request/invalid")
            status, body = api.handle(
                "GET", f"/v1/events?limit={EVENTS_MAX_LIMIT * 10}",
                token=token,
            )
            assert status == 200
            assert len(body["events"]) <= EVENTS_MAX_LIMIT
        finally:
            ctx.__exit__(None, None, None)


# -- the async server ---------------------------------------------------------------


def make_server(**config_kwargs):
    """Testbed + API + server, with three registered tenants."""
    testbed = Testbed()
    registry = MetricsRegistry()
    api = RestApi(testbed.plane, registry=registry)
    tokens = {
        "gold": testbed.plane.register_tenant(
            "gold", qos=QosClass.GUARANTEED
        ),
        "bronze": testbed.plane.register_tenant(
            "bronze", qos=QosClass.BEST_EFFORT,
            max_attachments=3, max_bytes=16 * MIB,
        ),
    }
    server = ControlServer(
        api, ServerConfig(**config_kwargs), registry=registry
    )
    return testbed, server, tokens, registry


class TestServerBasics:
    def test_request_response_and_bearer_auth(self):
        async def scenario():
            testbed, server, tokens, _ = make_server(workers=2)
            async with server:
                status, _h, body = await http_request(
                    "127.0.0.1", server.port, "GET", "/v1/state",
                    token=testbed.admin_token,
                )
                assert status == 200 and "state" in body
                status, _h, body = await http_request(
                    "127.0.0.1", server.port, "GET", "/v1/state"
                )
                assert (status, body["code"]) == (401, "auth/denied")

        asyncio.run(scenario())

    def test_metrics_served_as_raw_prometheus_exposition(self):
        async def scenario():
            testbed, server, tokens, _ = make_server(workers=1)
            async with server:
                status, headers, text = await http_request(
                    "127.0.0.1", server.port, "GET", "/v1/metrics",
                    token=testbed.admin_token,
                )
                assert status == 200
                assert headers["content-type"].startswith("text/plain")
                assert isinstance(text, str)
                assert "server_queue_depth" in text

        asyncio.run(scenario())

    def test_malformed_json_body_is_a_400(self):
        async def scenario():
            testbed, server, tokens, _ = make_server(workers=1)
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                blob = b"not json"
                writer.write(
                    b"POST /v1/attachments HTTP/1.1\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(blob), blob)
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b"400" in raw.split(b"\r\n", 1)[0]
                assert b"request/invalid" in raw

        asyncio.run(scenario())

    def test_oversized_body_is_rejected_with_413(self):
        async def scenario():
            testbed, server, tokens, _ = make_server(
                workers=1, max_body_bytes=64
            )
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b"POST /v1/attachments HTTP/1.1\r\n"
                    b"Content-Length: 100000\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b"413" in raw.split(b"\r\n", 1)[0]

        asyncio.run(scenario())


class TestConcurrentRaces:
    def test_concurrent_attaches_respect_the_quota_exactly(self):
        """8 simultaneous attaches against max_attachments=3: exactly 3
        win, 5 get structured 429s, and concurrent detaches return the
        ledger to zero."""

        async def scenario():
            testbed, server, tokens, _ = make_server(workers=4)
            async with server:
                async def attach():
                    return await http_request(
                        "127.0.0.1", server.port, "POST", "/v1/attachments",
                        body={"compute_host": "node0", "size": MIB},
                        token=tokens["bronze"],
                    )

                results = await asyncio.gather(*[attach() for _ in range(8)])
                statuses = sorted(r[0] for r in results)
                assert statuses == [201] * 3 + [429] * 5
                for status, _h, body in results:
                    if status == 429:
                        assert body["code"] == "control/quota-exceeded"

                ids = [r[2]["id"] for r in results if r[0] == 201]
                deletes = await asyncio.gather(*[
                    http_request(
                        "127.0.0.1", server.port, "DELETE",
                        f"/v1/attachments/{i}", token=tokens["bronze"],
                    )
                    for i in ids
                ])
                assert [d[0] for d in deletes] == [204] * 3

                _s, _h, body = await http_request(
                    "127.0.0.1", server.port, "GET", "/v1/tenants",
                    token=testbed.admin_token,
                )
                bronze = [
                    t for t in body["tenants"] if t["name"] == "bronze"
                ][0]
                assert bronze["attachments"] == 0 and bronze["bytes"] == 0

        asyncio.run(scenario())

    def test_interleaved_attach_detach_cycles_converge(self):
        async def scenario():
            testbed, server, tokens, _ = make_server(workers=4)
            async with server:
                async def cycle():
                    status, _h, body = await http_request(
                        "127.0.0.1", server.port, "POST", "/v1/attachments",
                        body={"compute_host": "node0", "size": MIB},
                        token=tokens["bronze"],
                    )
                    if status != 201:
                        assert status == 429
                        return status
                    dstatus, _h, _b = await http_request(
                        "127.0.0.1", server.port, "DELETE",
                        f"/v1/attachments/{body['id']}",
                        token=tokens["bronze"],
                    )
                    assert dstatus == 204
                    return status

                statuses = await asyncio.gather(*[cycle() for _ in range(20)])
                assert set(statuses) <= {201, 429}
                assert statuses.count(201) >= 3

                _s, _h, body = await http_request(
                    "127.0.0.1", server.port, "GET", "/v1/attachments",
                    token=testbed.admin_token,
                )
                assert body["attachments"] == []
                usage = testbed.plane.quotas.usage("bronze")
                assert usage["attachments"] == 0 and usage["bytes"] == 0

        asyncio.run(scenario())


class TestShedAndDrain:
    def test_queue_overflow_sheds_503_and_counts_it(self):
        """A deliberately slow handler + tiny queue: overflow requests
        get immediate 503s (code server/overloaded) and show up in both
        queue counters and the server.shed metric."""

        async def scenario():
            testbed, server, tokens, registry = make_server(
                workers=1, max_queue_depth=3
            )
            inner = server.api.handle

            def slow_handle(*args, **kwargs):
                import time
                time.sleep(0.02)  # hold the loop so the queue fills
                return inner(*args, **kwargs)

            server.api.handle = slow_handle
            async with server:
                results = await asyncio.gather(*[
                    http_request(
                        "127.0.0.1", server.port, "GET", "/v1/state",
                        token=tokens["bronze"],
                    )
                    for _ in range(12)
                ])
            statuses = [r[0] for r in results]
            shed = [r for r in results if r[0] == 503]
            assert shed, f"expected sheds, got {statuses}"
            for _s, _h, body in shed:
                assert body["code"] == "server/overloaded"
            assert server.queue.shed_count == len(shed)
            registry.collect()
            snapshot = registry.snapshot()
            metric_shed = sum(
                v for k, v in snapshot.items()
                if k.startswith("server.shed")
            )
            assert metric_shed == len(shed)

        asyncio.run(scenario())

    def test_draining_server_rejects_new_work_on_live_connections(self):
        async def scenario():
            testbed, server, tokens, _ = make_server(workers=1)
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                server._draining = True
                writer.write(
                    b"GET /v1/state HTTP/1.1\r\n"
                    b"Authorization: Bearer %s\r\n\r\n"
                    % testbed.admin_token.encode()
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                assert b"503" in raw.split(b"\r\n", 1)[0]
                assert b"server/draining" in raw
                server._draining = False  # let __aexit__ drain cleanly

        asyncio.run(scenario())

    def test_graceful_drain_finishes_admitted_work(self):
        """Work already in the queue completes during drain; afterwards
        the socket refuses new connections."""

        async def scenario():
            testbed, server, tokens, _ = make_server(workers=1)
            await server.start()
            port = server.port
            task = asyncio.ensure_future(http_request(
                "127.0.0.1", port, "POST", "/v1/attachments",
                body={"compute_host": "node0", "size": MIB},
                token=tokens["gold"],
            ))
            await asyncio.sleep(0.05)  # let it connect and enqueue
            await server.drain()
            status, _h, body = await task
            assert status == 201 and body["qos"] == "guaranteed"
            with pytest.raises(OSError):
                await http_request(
                    "127.0.0.1", port, "GET", "/v1/state",
                    token=testbed.admin_token, timeout_s=1,
                )

        asyncio.run(scenario())

    def test_best_effort_headroom_denial_is_a_503(self):
        """With a best-effort reserve set, a best-effort attach that
        would dip into it is refused with control/no-headroom."""

        async def scenario():
            testbed, server, tokens, _ = make_server(workers=1)
            testbed.plane.best_effort_reserve = 1.0  # reserve everything
            async with server:
                status, _h, body = await http_request(
                    "127.0.0.1", server.port, "POST", "/v1/attachments",
                    body={"compute_host": "node0", "size": MIB},
                    token=tokens["bronze"],
                )
                assert (status, body["code"]) == (503, "control/no-headroom")
                # guaranteed tenants are exempt from the reserve
                status, _h, body = await http_request(
                    "127.0.0.1", server.port, "POST", "/v1/attachments",
                    body={"compute_host": "node0", "size": MIB},
                    token=tokens["gold"],
                )
                assert status == 201

        asyncio.run(scenario())
