#!/usr/bin/env python3
"""Memcached on disaggregated memory (the Fig. 8 study, end to end).

Part 1 runs the *functional* stack: a scaled-down Facebook-ETC workload
against a real LRU cache (optionally behind a Twemproxy pair for
scale-out), reporting the hit ratio the paper calibrates against.

Part 2 runs the *latency model*: GET-latency distributions for all five
memory configurations, reproducing the Fig. 8 CDF summary.

Run:  python examples/memcached_study.py
"""

from repro.apps import Memcached, MemcachedLatencyModel, Twemproxy
from repro.testbed import MemoryConfigKind, make_environment
from repro.workloads import CacheOpType, EtcConfig, EtcGenerator


def functional_run() -> None:
    print("== Functional ETC run (scaled to 2 MiB cache) ==")
    config = EtcConfig(
        cache_bytes=2 << 20, keyspace_bytes=3 << 20, mean_item_bytes=330
    )
    generator = EtcGenerator(config)
    cache = Memcached(config.cache_bytes)
    warm_ops = 0
    for op in generator.warmup_operations():
        cache.set(op.key, b"x" * op.value_bytes)
        warm_ops += 1
    print(f"warm-up: {warm_ops} SETs, cache at "
          f"{cache.used_bytes / config.cache_bytes:.0%} of capacity")
    cache.stats.gets = cache.stats.hits = 0
    for op in generator.operations(40_000):
        if op.op_type is CacheOpType.GET:
            cache.get(op.key)
        else:
            cache.set(op.key, b"x" * op.value_bytes)
    print(f"measured hit ratio: {cache.stats.hit_ratio:.3f} "
          "(paper: 0.80-0.82)")
    print(f"evictions: {cache.stats.evictions}, "
          f"items resident: {len(cache)}")

    print("\n== Scale-out: the same keys behind Twemproxy ==")
    pool = Twemproxy([Memcached(1 << 20), Memcached(1 << 20)])
    keys = [f"key{i}" for i in range(1000)]
    for key in keys:
        pool.set(key, b"v")
    balance = pool.key_distribution(keys)
    print(f"ketama key distribution over 2 servers: {balance}")


def latency_study() -> None:
    print("\n== Fig. 8 — GET latency per configuration ==")
    order = (
        MemoryConfigKind.LOCAL,
        MemoryConfigKind.INTERLEAVED,
        MemoryConfigKind.SINGLE_DISAGGREGATED,
        MemoryConfigKind.BONDING_DISAGGREGATED,
        MemoryConfigKind.SCALE_OUT,
    )
    print(f"{'config':<24}{'mean':>8}{'p50':>8}{'p90':>8}{'p99':>8}"
          f"{'p90 degr.':>11}")
    for kind in order:
        model = MemcachedLatencyModel(make_environment(kind))
        recorder = model.record(30_000)
        print(
            f"{kind.value:<24}"
            f"{recorder.mean * 1e6:>7.0f}µ"
            f"{recorder.percentile(50) * 1e6:>7.0f}µ"
            f"{recorder.percentile(90) * 1e6:>7.0f}µ"
            f"{recorder.percentile(99) * 1e6:>7.0f}µ"
            f"{recorder.degradation_at(90):>10.0%}"
        )
    print("\npaper means: 600 / 614 / 635 / 650 / 713 µs; "
          "p90 degradation 19/33/34/64/~100 %")
    print("ThymesisFlow keeps Memcached within ~7% of local latency — "
          "while scale-out pays the proxy hop.")


def main() -> None:
    functional_run()
    latency_study()


if __name__ == "__main__":
    main()
