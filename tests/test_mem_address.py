"""Unit + property tests for address ranges and window allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem import (
    CACHELINE_BYTES,
    AddressError,
    AddressRange,
    AddressSpaceAllocator,
)


class TestAddressRange:
    def test_end_and_last(self):
        r = AddressRange(0x1000, 0x100)
        assert r.end == 0x1100
        assert r.last == 0x10FF

    def test_contains_boundaries(self):
        r = AddressRange(0x1000, 0x100)
        assert r.contains(0x1000)
        assert r.contains(0x10FF)
        assert not r.contains(0x1100)
        assert not r.contains(0xFFF)

    def test_contains_range(self):
        outer = AddressRange(0x1000, 0x1000)
        assert outer.contains_range(AddressRange(0x1000, 0x1000))
        assert outer.contains_range(AddressRange(0x1800, 0x100))
        assert not outer.contains_range(AddressRange(0x1800, 0x1000))

    def test_overlaps(self):
        a = AddressRange(0x0, 0x100)
        assert a.overlaps(AddressRange(0x80, 0x100))
        assert not a.overlaps(AddressRange(0x100, 0x100))

    def test_offset_and_translate(self):
        r = AddressRange(0x4000, 0x1000)
        assert r.offset_of(0x4800) == 0x800
        assert r.translate(0x4800, 0x90000) == 0x90800

    def test_offset_of_outside_raises(self):
        with pytest.raises(AddressError):
            AddressRange(0x4000, 0x1000).offset_of(0x3FFF)

    def test_subrange_escape_raises(self):
        with pytest.raises(AddressError):
            AddressRange(0x0, 0x100).subrange(0x80, 0x100)

    def test_split_even(self):
        parts = AddressRange(0x0, 0x400).split(0x100)
        assert len(parts) == 4
        assert parts[0].start == 0x0
        assert parts[3].start == 0x300

    def test_split_uneven_raises(self):
        with pytest.raises(AddressError):
            AddressRange(0x0, 0x300).split(0x200)

    def test_cachelines_cover_range(self):
        r = AddressRange(130, 300)  # unaligned start and end
        lines = list(r.cachelines())
        assert lines[0] == 128
        assert lines[-1] == (r.last // CACHELINE_BYTES) * CACHELINE_BYTES
        assert all(a % CACHELINE_BYTES == 0 for a in lines)

    def test_invalid_construction(self):
        with pytest.raises(AddressError):
            AddressRange(-1, 10)
        with pytest.raises(AddressError):
            AddressRange(0, 0)

    @given(
        start=st.integers(min_value=0, max_value=2**40),
        size=st.integers(min_value=1, max_value=2**30),
        offset=st.integers(min_value=0, max_value=2**30),
    )
    def test_translate_preserves_offset(self, start, size, offset):
        r = AddressRange(start, size)
        address = start + (offset % size)
        target_base = 0x1_0000_0000
        translated = r.translate(address, target_base)
        assert translated - target_base == address - start


class TestAllocator:
    def window(self, size=0x10000):
        return AddressSpaceAllocator(AddressRange(0x100000, size))

    def test_allocations_do_not_overlap(self):
        alloc = self.window()
        a = alloc.allocate(0x1000)
        b = alloc.allocate(0x1000)
        assert not a.overlaps(b)

    def test_alignment_respected(self):
        alloc = AddressSpaceAllocator(AddressRange(0x100, 0x100000))
        r = alloc.allocate(0x1000, alignment=0x1000)
        assert r.start % 0x1000 == 0

    def test_exhaustion_raises(self):
        alloc = self.window(size=0x1000)
        alloc.allocate(0x1000)
        with pytest.raises(AddressError):
            alloc.allocate(0x80)

    def test_free_then_reallocate(self):
        alloc = self.window(size=0x1000)
        r = alloc.allocate(0x1000)
        alloc.free(r)
        r2 = alloc.allocate(0x1000)
        assert r2.start == r.start

    def test_free_coalesces_neighbours(self):
        alloc = self.window(size=0x3000)
        a = alloc.allocate(0x1000)
        b = alloc.allocate(0x1000)
        c = alloc.allocate(0x1000)
        alloc.free(a)
        alloc.free(c)
        alloc.free(b)  # middle free must merge the window back together
        big = alloc.allocate(0x3000)
        assert big.size == 0x3000

    def test_double_free_raises(self):
        alloc = self.window()
        r = alloc.allocate(0x1000)
        alloc.free(r)
        with pytest.raises(AddressError):
            alloc.free(r)

    def test_allocate_at_explicit_range(self):
        alloc = self.window()
        r = alloc.allocate_at(0x104000, 0x1000)
        assert r.start == 0x104000
        with pytest.raises(AddressError):
            alloc.allocate_at(0x104800, 0x100)  # overlaps previous

    def test_accounting(self):
        alloc = self.window(size=0x4000)
        total = alloc.free_bytes
        r = alloc.allocate(0x1000)
        assert alloc.allocated_bytes == 0x1000
        assert alloc.free_bytes == total - 0x1000
        alloc.free(r)
        assert alloc.free_bytes == total

    def test_bad_alignment_rejected(self):
        alloc = self.window()
        with pytest.raises(AddressError):
            alloc.allocate(0x100, alignment=3)

    @settings(max_examples=50, deadline=None)
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=0x800), min_size=1, max_size=30
        ),
        frees=st.lists(st.integers(min_value=0, max_value=29), max_size=15),
    )
    def test_random_alloc_free_never_overlaps_and_conserves_bytes(
        self, sizes, frees
    ):
        window = AddressRange(0x0, 0x100000)
        alloc = AddressSpaceAllocator(window)
        live = []
        for size in sizes:
            live.append(alloc.allocate(size, alignment=128))
        for index in frees:
            if live and index < len(live):
                alloc.free(live.pop(index % len(live)))
        # Invariant 1: no two live allocations overlap.
        for i, a in enumerate(live):
            for b in live[i + 1 :]:
                assert not a.overlaps(b)
        # Invariant 2: allocator accounting matches live set.
        assert alloc.allocated_bytes == sum(r.size for r in live)
        # Invariant 3: everything stays inside the window.
        for r in live:
            assert window.contains_range(r)
